// Telemetry layer tests: the metrics registry and encoders, sim-time spans,
// the structured/thread-safe logger, and the end-to-end determinism
// contract — two DST runs of the same seed must render byte-identical
// Prometheus snapshots, serially or on a 4-wide worker pool, and the
// controller's GET /metrics must serve the live registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "controller/rest_backend.hpp"
#include "net/network.hpp"
#include "obs/aggregate.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/simulator.hpp"
#include "testing/harness.hpp"
#include "testing/scenario.hpp"
#include "util/logging.hpp"

namespace {

using namespace blab;
namespace dst = blab::testing;
using obs::Labels;

// ------------------------------------------------------------ registry ----

TEST(MetricsRegistry, CountersAndGaugesAccumulate) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("blab_test_ticks_total");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Same (name, labels) resolves to the same instrument.
  registry.counter("blab_test_ticks_total").inc();
  EXPECT_EQ(c.value(), 6u);

  obs::Gauge& g = registry.gauge("blab_test_depth");
  g.set(3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  const auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("blab_test_ticks_total"), 6.0);
  EXPECT_DOUBLE_EQ(snap.value_or("blab_test_depth"), 1.5);
  EXPECT_DOUBLE_EQ(snap.value_or("blab_no_such_series", {}, -7.0), -7.0);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries) {
  obs::MetricsRegistry registry;
  registry.counter("blab_test_total", {{"b", "2"}, {"a", "1"}}).inc();
  registry.counter("blab_test_total", {{"a", "1"}, {"b", "2"}}).inc();
  EXPECT_EQ(registry.series_count(), 1u);
  const auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("blab_test_total", {{"a", "1"}, {"b", "2"}}),
                   2.0);
}

TEST(MetricsRegistry, HistogramBoundaryEdgesAreLeInclusive) {
  obs::MetricsRegistry registry;
  obs::Histogram& h =
      registry.histogram("blab_test_latency_seconds", {1.0, 2.0});
  h.observe(1.0);   // exactly on a bound: le="1" bucket
  h.observe(1.001); // just past: le="2"
  h.observe(2.0);   // exactly on the last finite bound: le="2"
  h.observe(9.0);   // overflow: +Inf
  h.observe(-1.0);  // below every bound: first bucket
  ASSERT_EQ(h.bucket_count(), 3u);
  EXPECT_EQ(h.bucket(0), 2u);  // {1.0, -1.0}
  EXPECT_EQ(h.bucket(1), 2u);  // {1.001, 2.0}
  EXPECT_EQ(h.bucket(2), 1u);  // {9.0}
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.001 + 2.0 + 9.0 - 1.0);
}

TEST(MetricsRegistry, HistogramIgnoresNaNAndSortsBounds) {
  obs::MetricsRegistry registry;
  obs::Histogram& h =
      registry.histogram("blab_test_h", {5.0, 1.0, 5.0});  // unsorted + dup
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 5.0}));
  h.observe(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistry, KindMismatchIsSurvivable) {
  util::LogCapture capture;
  obs::MetricsRegistry registry;
  registry.counter("blab_test_total").inc(3);
  // Asking for the same series under a different kind must not corrupt the
  // original: the caller gets a detached dummy and an error is logged.
  obs::Gauge& wrong = registry.gauge("blab_test_total");
  wrong.set(99.0);
  EXPECT_DOUBLE_EQ(registry.snapshot().value_or("blab_test_total"), 3.0);
  EXPECT_TRUE(capture.contains("blab_test_total"));
}

TEST(MetricsRegistry, CardinalityWarningFiresOncePerName) {
  util::LogCapture capture;
  obs::MetricsRegistry registry;
  const std::size_t n = obs::MetricsRegistry::kSeriesWarnCardinality + 8;
  for (std::size_t i = 0; i < n; ++i) {
    registry.counter("blab_test_exploding_total",
                     {{"id", std::to_string(i)}})
        .inc();
  }
  EXPECT_EQ(registry.series_count(), n);
  const auto lines = capture.lines();
  const auto warns = std::count_if(
      lines.begin(), lines.end(), [](const std::string& line) {
        return line.find("blab_test_exploding_total") != std::string::npos &&
               line.find("label combinations") != std::string::npos;
      });
  EXPECT_EQ(warns, 1) << "cardinality warning must fire exactly once";
  // The registry keeps serving series past the ceiling.
  EXPECT_DOUBLE_EQ(registry.snapshot().value_or("blab_test_exploding_total",
                                                {{"id", "0"}}),
                   1.0);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("blab_test_hits_total");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

// ------------------------------------------------------------ encoders ----

TEST(Encoders, PrometheusGolden) {
  obs::MetricsRegistry registry;
  registry.counter("blab_jobs_total", {{"result", "ok"}}).inc(3);
  registry.gauge("blab_depth").set(2.5);
  obs::Histogram& h = registry.histogram("blab_wait_seconds", {1.0, 5.0});
  h.observe(0.5);
  h.observe(4.0);
  h.observe(30.0);
  const std::string expected =
      "# TYPE blab_depth gauge\n"
      "blab_depth 2.500000\n"
      "# TYPE blab_jobs_total counter\n"
      "blab_jobs_total{result=\"ok\"} 3\n"
      "# TYPE blab_wait_seconds histogram\n"
      "blab_wait_seconds_bucket{le=\"1\"} 1\n"
      "blab_wait_seconds_bucket{le=\"5\"} 2\n"
      "blab_wait_seconds_bucket{le=\"+Inf\"} 3\n"
      "blab_wait_seconds_sum 34.500000\n"
      "blab_wait_seconds_count 3\n";
  EXPECT_EQ(obs::encode_prometheus(registry.snapshot()), expected);
}

TEST(Encoders, JsonHoldsEverySeries) {
  obs::MetricsRegistry registry;
  registry.counter("blab_a_total").inc();
  registry.gauge("blab_b").set(1.0);
  const std::string json = obs::encode_json(registry.snapshot());
  EXPECT_EQ(json.rfind("{\"series\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"blab_a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"blab_b\""), std::string::npos);
}

TEST(Encoders, MergeSumsCountersAndHistograms) {
  obs::MetricsRegistry a, b;
  a.counter("blab_x_total").inc(2);
  b.counter("blab_x_total").inc(5);
  a.histogram("blab_h", {1.0}).observe(0.5);
  b.histogram("blab_h", {1.0}).observe(3.0);
  const auto merged = obs::merge_snapshots({a.snapshot(), b.snapshot()});
  EXPECT_DOUBLE_EQ(merged.value_or("blab_x_total"), 7.0);
  const obs::SeriesSnapshot* h = merged.find("blab_h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->buckets[0] + h->buckets[1], 2u);
}

// Pinned Chrome trace-event rendering: ph X events with args carrying span,
// parent, trace, and typed attributes. A diff here breaks Perfetto loading.
TEST(Encoders, PerfettoTraceGolden) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  const std::uint64_t root = tracer.begin_detached("scheduler", "job");
  tracer.set_attr(root, "job", std::string_view{"job-1"});
  {
    obs::ScopedSpan run{&tracer, "scheduler", "run_job",
                        tracer.context_of(root)};
    run.attr("samples", std::int64_t{25});
    now_us = 150;
  }
  now_us = 200;
  tracer.end(root);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"run_job\",\"cat\":\"scheduler\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":150,\"pid\":1,\"tid\":1,\"args\":{\"span\":2,\"parent\":1,"
      "\"trace\":1,\"samples\":25}},"
      "{\"name\":\"job\",\"cat\":\"scheduler\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":200,\"pid\":1,\"tid\":1,\"args\":{\"span\":1,\"parent\":0,"
      "\"trace\":1,\"job\":\"job-1\"}}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(obs::encode_trace_json(tracer.spans()), expected);

  // The pointer overload renders identically.
  EXPECT_EQ(obs::encode_trace_json(tracer.spans_in(1)), expected);

  const std::string list = obs::encode_trace_list_json(tracer);
  EXPECT_EQ(list.rfind("{\"traces\":[", 0), 0u) << list;
  EXPECT_NE(list.find("\"trace_id\":1"), std::string::npos);
  EXPECT_NE(list.find("\"job\":\"job-1\""), std::string::npos);
  EXPECT_NE(list.find("\"spans\":2"), std::string::npos);
}

TEST(Encoders, CorpusTraceNamesOneProcessPerSeed) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  { obs::ScopedSpan s{&tracer, "scheduler", "run_job"}; }
  const std::vector<obs::SpanRecord> spans = tracer.spans();
  const std::string doc =
      obs::encode_trace_json_corpus({{7, &spans}, {9, nullptr}});
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\"name\":\"seed 7\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"seed 9\""), std::string::npos);
  EXPECT_NE(doc.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"run_job\""), std::string::npos);
}

// ---------------------------------------------------------- exemplars ----

// First observation always attaches; afterwards only tail values (fraction
// of prior mass strictly below the value's own bucket >= the quantile) do.
TEST(MetricsRegistry, ExemplarAttachesAboveTheQuantile) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("blab_wait_seconds", {1.0, 5.0});
  h.observe(0.5, obs::Exemplar{1, 10});  // empty histogram: attaches
  ASSERT_TRUE(h.exemplar(0).valid());
  EXPECT_EQ(h.exemplar(0).trace, 1u);
  EXPECT_DOUBLE_EQ(h.exemplar(0).value, 0.5);

  for (int i = 0; i < 8; ++i) h.observe(0.5);
  // All 9 prior observations sit below the +Inf bucket: 9/9 >= 0.9, attach.
  h.observe(30.0, obs::Exemplar{2, 20});
  ASSERT_TRUE(h.exemplar(2).valid());
  EXPECT_EQ(h.exemplar(2).trace, 2u);

  // A bulk value (nothing below its bucket) does not displace the exemplar.
  h.observe(0.4, obs::Exemplar{3, 30});
  EXPECT_EQ(h.exemplar(0).trace, 1u);
}

TEST(MetricsRegistry, ExemplarQuantileIsConfigurable) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("blab_lat_seconds", {1.0});
  h.set_exemplar_quantile(0.5);
  h.observe(0.5);
  h.observe(0.5);
  h.observe(2.0, obs::Exemplar{5, 100});  // 2/2 below >= 0.5: attaches
  EXPECT_EQ(h.exemplar(1).trace, 5u);
  h.observe(0.3, obs::Exemplar{6, 200});  // 0/3 below < 0.5: rejected
  EXPECT_FALSE(h.exemplar(0).valid());

  h.set_exemplar_quantile(0.0);  // admit everything; latest wins
  h.observe(0.3, obs::Exemplar{7, 300});
  EXPECT_EQ(h.exemplar(0).trace, 7u);
  h.observe(2.5, obs::Exemplar{8, 400});
  EXPECT_EQ(h.exemplar(1).trace, 8u);
}

TEST(Encoders, PrometheusRendersExemplarSuffixes) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("blab_wait_seconds", {1.0, 5.0});
  h.observe(0.5, obs::Exemplar{7, 123});
  h.observe(30.0, obs::Exemplar{9, 456});
  const std::string text = obs::encode_prometheus(registry.snapshot());
  EXPECT_NE(text.find("blab_wait_seconds_bucket{le=\"1\"} 1"
                      " # {trace_id=\"7\",ts_us=\"123\"} 0.500000"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("le=\"+Inf\"} 2 # {trace_id=\"9\",ts_us=\"456\"} 30"),
            std::string::npos)
      << text;
  // The middle bucket holds no exemplar and renders the plain form.
  EXPECT_NE(text.find("blab_wait_seconds_bucket{le=\"5\"} 1\n"),
            std::string::npos)
      << text;

  const std::string json = obs::encode_json(registry.snapshot());
  EXPECT_NE(json.find("\"exemplars\":[{\"bucket\":0,\"trace_id\":7,"
                      "\"ts_us\":123,"),
            std::string::npos)
      << json;
}

TEST(Encoders, MergeKeepsTheLatestExemplarPerBucket) {
  obs::MetricsRegistry a, b;
  a.histogram("blab_h", {1.0}).observe(0.5, obs::Exemplar{1, 100});
  b.histogram("blab_h", {1.0}).observe(0.5, obs::Exemplar{2, 200});
  const auto merged = obs::merge_snapshots({a.snapshot(), b.snapshot()});
  const obs::SeriesSnapshot* h = merged.find("blab_h");
  ASSERT_NE(h, nullptr);
  ASSERT_FALSE(h->exemplars.empty());
  EXPECT_EQ(h->exemplars[0].trace, 2u);  // greater sim timestamp wins
  EXPECT_EQ(h->exemplars[0].ts_us, 200);
}

// The tie-break is strict: equal sim timestamps keep the EARLIER snapshot's
// exemplar, so merge output does not depend on which pooled worker happened
// to flush last. An invalid exemplar never displaces a valid one.
TEST(Encoders, MergeExemplarTiesKeepTheEarlierSnapshot) {
  obs::MetricsRegistry a, b, c;
  a.histogram("blab_h", {1.0}).observe(0.5, obs::Exemplar{1, 100});
  b.histogram("blab_h", {1.0}).observe(0.5, obs::Exemplar{2, 100});  // tie
  c.histogram("blab_h", {1.0}).observe(0.5);  // no exemplar attached
  const auto merged =
      obs::merge_snapshots({a.snapshot(), b.snapshot(), c.snapshot()});
  const obs::SeriesSnapshot* h = merged.find("blab_h");
  ASSERT_NE(h, nullptr);
  ASSERT_FALSE(h->exemplars.empty());
  EXPECT_EQ(h->exemplars[0].trace, 1u) << "tie must keep the first snapshot";
  EXPECT_EQ(h->exemplars[0].ts_us, 100);
  EXPECT_EQ(h->count, 3u);
}

// Histograms only merge when their bucket boundaries agree exactly; a
// mismatched layout is skipped rather than summed bucket-by-index into
// nonsense (counts from the first-seen layout survive untouched).
TEST(Encoders, MergeSkipsHistogramsWithMismatchedBounds) {
  obs::MetricsRegistry a, b;
  a.histogram("blab_h", {1.0, 5.0}).observe(0.5);
  b.histogram("blab_h", {2.0}).observe(0.5);
  const auto merged = obs::merge_snapshots({a.snapshot(), b.snapshot()});
  const obs::SeriesSnapshot* h = merged.find("blab_h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->bounds, (std::vector<double>{1.0, 5.0}));
  EXPECT_EQ(h->count, 1u) << "mismatched layout must not fold in";
}

// ------------------------------------------------------------ spans ------

TEST(Spans, NestAndCloseLifoOnSimClock) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  {
    obs::ScopedSpan outer{&tracer, "scheduler", "dispatch"};
    now_us = 100;
    {
      obs::ScopedSpan inner{&tracer, "scheduler", "run_job"};
      now_us = 250;
    }
    now_us = 400;
  }
  ASSERT_EQ(tracer.spans().size(), 2u);
  const obs::SpanRecord& inner = tracer.spans()[0];
  const obs::SpanRecord& outer = tracer.spans()[1];
  EXPECT_EQ(inner.name, "run_job");
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.duration_us(), 150);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(outer.duration_us(), 400);
  EXPECT_EQ(tracer.open_depth(), 0u);

  std::ostringstream jsonl;
  tracer.write_jsonl(jsonl);
  EXPECT_NE(jsonl.str().find("\"name\":\"run_job\""), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"component\":\"scheduler\""),
            std::string::npos);
}

TEST(Spans, NullTracerIsANoOp) {
  obs::ScopedSpan span{nullptr, "x", "y"};  // must not crash
}

// A detached root span plus an explicit TraceContext tie synchronous and
// asynchronous children into one causal tree — the propagation pattern the
// scheduler/API/net layers use for every job.
TEST(Spans, ContextPropagationJoinsDetachedWorkToOneTrace) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  const std::uint64_t root = tracer.begin_detached("scheduler", "job");
  tracer.set_attr(root, "job", std::string_view{"job-1"});
  const obs::TraceContext ctx = tracer.context_of(root);
  ASSERT_TRUE(ctx.valid());
  {
    obs::ScopedSpan run{&tracer, "scheduler", "run_job", ctx};
    now_us = 50;
    obs::ScopedSpan api{&tracer, "api", "start_monitor"};  // stack-inherited
    now_us = 80;
  }
  // Async work opened after the stack unwound, carrying the captured ctx.
  const std::uint64_t flow = tracer.begin_detached("net", "flow", ctx);
  EXPECT_EQ(tracer.open_in_trace(ctx.trace), 2u);  // root + flow
  now_us = 120;
  tracer.end(flow);
  tracer.end(root);

  const auto spans = tracer.spans_in(ctx.trace);
  ASSERT_EQ(spans.size(), 4u);
  std::size_t roots = 0;
  for (const obs::SpanRecord* s : spans) {
    EXPECT_EQ(s->trace, ctx.trace);
    if (s->parent == 0) ++roots;
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(tracer.find_trace_by_root_attr("job", "job-1"), ctx.trace);
  EXPECT_EQ(tracer.find_trace_by_root_attr("job", "job-2"), 0u);
  ASSERT_EQ(tracer.trace_ids().size(), 1u);
  EXPECT_EQ(tracer.open_in_trace(ctx.trace), 0u);
}

// Satellite: end() tolerates double ends, unknown ids, and out-of-order
// ends — each counted, each warned exactly once, never corrupting the stack.
TEST(Spans, EndToleratesDoubleUnknownAndOutOfOrderEnds) {
  util::LogCapture capture;
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};

  tracer.end(0);  // null handle: silent no-op
  EXPECT_EQ(tracer.end_mismatches(), 0u);

  tracer.end(999);  // unknown id
  EXPECT_EQ(tracer.end_mismatches(), 1u);

  const std::uint64_t outer = tracer.begin("x", "outer");
  (void)tracer.begin("x", "inner");
  tracer.end(outer);  // out of order: also closes the leaked inner span
  EXPECT_EQ(tracer.open_depth(), 0u);
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.end_mismatches(), 2u);

  const std::uint64_t flow = tracer.begin_detached("x", "flow");
  tracer.end(flow);
  tracer.end(flow);  // double end
  EXPECT_EQ(tracer.end_mismatches(), 3u);
  EXPECT_EQ(tracer.spans().size(), 3u);

  // One warning per misuse kind, not per occurrence.
  EXPECT_TRUE(capture.contains("span end without a matching open span"));
  EXPECT_TRUE(capture.contains("span ended out of order"));
  EXPECT_EQ(capture.size(), 2u);
  tracer.end(999);
  EXPECT_EQ(capture.size(), 2u);
  EXPECT_EQ(tracer.end_mismatches(), 4u);
}

// Spans still open when run_all trips its event cap must not crash the
// tracer, and remain closable afterwards.
TEST(Spans, OpenSpansSurviveTheSimulatorEventCap) {
  sim::Simulator sim;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(
        util::Duration::millis(i + 1),
        [&sim, &ids] {
          ids.push_back(sim.tracer().begin_detached("test", "pending"));
        },
        "open-span");
  }
  sim.run_all(5);
  ASSERT_TRUE(sim.hit_cap());
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(sim.tracer().open_total(), 5u);
  for (std::uint64_t id : ids) sim.tracer().end(id);
  EXPECT_EQ(sim.tracer().open_total(), 0u);
  EXPECT_EQ(sim.tracer().spans().size(), ids.size());
  EXPECT_EQ(sim.tracer().end_mismatches(), 0u);
}

// ----------------------------------------------------------- sampling ----

// The conservation contract: with keep-1-in-4 on (mirror, frame), opening
// and closing N frame spans buffers only the kept ones, but their weights
// always sum to the exact span count — at every instant, not just at the
// end — so weighted aggregates equal unsampled counters.
TEST(Sampling, WeightsConserveTheExactSpanCount) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  tracer.set_sampling("mirror", "frame", 4);
  const std::uint64_t session = tracer.begin_detached("mirror", "session");
  const obs::TraceContext ctx = tracer.context_of(session);
  for (int i = 0; i < 10; ++i) {
    now_us += 10;
    { obs::ScopedSpan frame{&tracer, "mirror", "frame", ctx}; }
    std::uint64_t weighted = 0;
    for (const obs::SpanRecord& s : tracer.spans()) weighted += s.weight;
    EXPECT_EQ(weighted, static_cast<std::uint64_t>(i + 1))
        << "conservation broke after frame " << i;
  }
  tracer.end(session);

  // Counts 0..9 with keep-1-in-4: 0, 4, 8 kept; each drop credits the last
  // kept span of its family, so the weights land 4, 4, 2.
  std::vector<std::uint64_t> frame_weights;
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.name == "frame") frame_weights.push_back(s.weight);
  }
  EXPECT_EQ(frame_weights, (std::vector<std::uint64_t>{4, 4, 2}));
  EXPECT_EQ(tracer.sampled_out(), 7u);
  EXPECT_EQ(tracer.weight_uncredited(), 0u);
  // The unsampled session span keeps weight 1.
  EXPECT_EQ(tracer.spans().back().weight, 1u);
}

// Sampling state is per (family, trace): every trace keeps its own first
// span, so a low-traffic trace is never blinded by a busy neighbor.
TEST(Sampling, FirstSpanOfEveryTraceIsKept) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  tracer.set_sampling("mirror", "frame", 8);
  for (int t = 0; t < 3; ++t) {
    const std::uint64_t root = tracer.begin_detached("mirror", "session");
    const obs::TraceContext ctx = tracer.context_of(root);
    { obs::ScopedSpan frame{&tracer, "mirror", "frame", ctx}; }
    tracer.end(root);
  }
  std::size_t frames = 0;
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.name == "frame") ++frames;
  }
  EXPECT_EQ(frames, 3u) << "each trace's first frame must survive sampling";
  EXPECT_EQ(tracer.sampled_out(), 0u);
}

TEST(Sampling, KeepOneInOneRemovesThePolicy) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  tracer.set_sampling("mirror", "frame", 4);
  tracer.set_sampling("mirror", "frame", 1);
  const std::uint64_t root = tracer.begin_detached("mirror", "session");
  const obs::TraceContext ctx = tracer.context_of(root);
  for (int i = 0; i < 6; ++i) {
    obs::ScopedSpan frame{&tracer, "mirror", "frame", ctx};
  }
  tracer.end(root);
  EXPECT_EQ(tracer.spans().size(), 7u);
  EXPECT_EQ(tracer.sampled_out(), 0u);
}

// end() misuse accounting must stay exact for sampled-out spans: the span
// was never buffered, but its id is live until the first end(), and only a
// second end() of the same id is a mismatch.
TEST(Sampling, EndMismatchCountingSurvivesSampledOutSpans) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  tracer.set_sampling("mirror", "frame", 2);
  const std::uint64_t root = tracer.begin_detached("mirror", "session");
  const obs::TraceContext ctx = tracer.context_of(root);
  const std::uint64_t kept = tracer.begin_detached("mirror", "frame", ctx);
  const std::uint64_t dropped = tracer.begin_detached("mirror", "frame", ctx);
  tracer.end(kept);
  tracer.end(dropped);  // discarded, not buffered — still a clean end
  EXPECT_EQ(tracer.end_mismatches(), 0u);
  tracer.end(dropped);  // double end of the sampled-out span
  EXPECT_EQ(tracer.end_mismatches(), 1u);
  tracer.end(root);
  EXPECT_EQ(tracer.sampled_out(), 1u);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].weight, 2u) << "drop credited the kept frame";
}

// ------------------------------------------------------- tail sampling ----

// A slow trace (root duration >= threshold) keeps every buffered span at
// weight 1; a fast trace falls back to head sampling. The decision defers
// until the root ends — meanwhile the spans sit in tail_pending at full
// weight, preserving the conservation contract at every instant.
TEST(TailSampling, SlowTraceKeepsFullFidelityFastTraceHeadSamples) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  tracer.set_tail_sampling("mirror", "frame", 4, 1000);

  // Slow trace: root spans 0..2000 us, past the 1000 us threshold.
  const std::uint64_t slow = tracer.begin_detached("mirror", "session");
  const obs::TraceContext slow_ctx = tracer.context_of(slow);
  for (int i = 0; i < 8; ++i) {
    now_us += 250;
    { obs::ScopedSpan frame{&tracer, "mirror", "frame", slow_ctx}; }
  }
  EXPECT_EQ(tracer.tail_pending("mirror", "frame"), 8u)
      << "undecided spans buffer at full weight";
  EXPECT_TRUE(tracer.spans().empty()) << "nothing commits before the root";
  tracer.end(slow);
  EXPECT_EQ(tracer.tail_pending("mirror", "frame"), 0u);
  EXPECT_EQ(tracer.tail_slow_traces(), 1u);
  std::size_t frames = 0;
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.name != "frame") continue;
    ++frames;
    EXPECT_EQ(s.weight, 1u) << "slow-outlier spans commit at weight 1";
  }
  EXPECT_EQ(frames, 8u);
  EXPECT_EQ(tracer.sampled_out(), 0u);

  // Fast trace: root closes immediately, under the threshold. The pending
  // buffer falls back to keep-1-in-4 with drop credits.
  const std::size_t before = tracer.spans().size();
  const std::uint64_t fast = tracer.begin_detached("mirror", "session");
  const obs::TraceContext fast_ctx = tracer.context_of(fast);
  for (int i = 0; i < 8; ++i) {
    obs::ScopedSpan frame{&tracer, "mirror", "frame", fast_ctx};
  }
  tracer.end(fast);
  EXPECT_EQ(tracer.tail_slow_traces(), 1u);
  std::uint64_t kept = 0, weighted = 0;
  for (std::size_t i = before; i < tracer.spans().size(); ++i) {
    const obs::SpanRecord& s = tracer.spans()[i];
    if (s.name != "frame") continue;
    ++kept;
    weighted += s.weight;
  }
  EXPECT_EQ(kept, 2u) << "8 frames at keep-1-in-4";
  EXPECT_EQ(weighted, 8u) << "head fallback still conserves the count";
  EXPECT_EQ(tracer.sampled_out(), 6u);
}

// Conservation with the pending term: kept weights + tail_pending equals
// the exact span count at every instant, before and after the decision.
TEST(TailSampling, PendingPlusKeptWeightsConserveTheCount) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  tracer.set_tail_sampling("monsoon", "synth_block", 8, 5000);
  const std::uint64_t root = tracer.begin_detached("monsoon", "capture");
  const obs::TraceContext ctx = tracer.context_of(root);
  for (int i = 0; i < 20; ++i) {
    now_us += 100;
    { obs::ScopedSpan block{&tracer, "monsoon", "synth_block", ctx}; }
    std::uint64_t weighted = 0;
    for (const obs::SpanRecord& s : tracer.spans()) {
      if (s.name == "synth_block") weighted += s.weight;
    }
    EXPECT_EQ(weighted + tracer.tail_pending("monsoon", "synth_block"),
              static_cast<std::uint64_t>(i + 1))
        << "conservation broke at block " << i;
  }
  tracer.end(root);  // 2000 us < 5000 us threshold: head fallback
  std::uint64_t weighted = 0;
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.name == "synth_block") weighted += s.weight;
  }
  EXPECT_EQ(weighted, 20u);
  EXPECT_EQ(tracer.tail_pending(), 0u);
  EXPECT_EQ(tracer.weight_uncredited(), 0u);
}

// Spans of the family that finish AFTER the root's decision inherit it
// instead of re-buffering.
TEST(TailSampling, LateSpansFollowTheTraceDecision) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  tracer.set_tail_sampling("mirror", "frame", 4, 1000);
  const std::uint64_t root = tracer.begin_detached("mirror", "session");
  const obs::TraceContext ctx = tracer.context_of(root);
  now_us += 2000;
  tracer.end(root);  // slow outlier, decided with zero pending frames
  for (int i = 0; i < 5; ++i) {
    obs::ScopedSpan frame{&tracer, "mirror", "frame", ctx};
  }
  std::size_t frames = 0;
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.name != "frame") continue;
    ++frames;
    EXPECT_EQ(s.weight, 1u);
  }
  EXPECT_EQ(frames, 5u) << "post-decision spans keep full fidelity";
  EXPECT_EQ(tracer.tail_pending(), 0u);
}

// A runaway trace cannot hold unbounded spans hostage: at
// kMaxTailPendingPerTrace the buffered prefix flushes through head sampling
// and tail_overflows ticks (the conservation oracle bails on that signal).
TEST(TailSampling, PendingBufferOverflowFlushesPrefix) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  tracer.set_tail_sampling("mirror", "frame", 4, 1'000'000);
  const std::uint64_t root = tracer.begin_detached("mirror", "session");
  const obs::TraceContext ctx = tracer.context_of(root);
  const std::size_t n = obs::Tracer::kMaxTailPendingPerTrace + 10;
  for (std::size_t i = 0; i < n; ++i) {
    now_us += 1;
    obs::ScopedSpan frame{&tracer, "mirror", "frame", ctx};
  }
  EXPECT_EQ(tracer.tail_overflows(), 1u);
  EXPECT_EQ(tracer.tail_pending("mirror", "frame"), 10u)
      << "buffering resumes for the remainder after the flush";
  tracer.end(root);
  EXPECT_EQ(tracer.tail_pending(), 0u);
}

// Re-configuring or removing the policy flushes pending spans through the
// previous policy's head fallback rather than leaking them.
TEST(TailSampling, RemovingThePolicyFlushesPendingSpans) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  tracer.set_tail_sampling("mirror", "frame", 2, 1000);
  const std::uint64_t root = tracer.begin_detached("mirror", "session");
  const obs::TraceContext ctx = tracer.context_of(root);
  for (int i = 0; i < 4; ++i) {
    obs::ScopedSpan frame{&tracer, "mirror", "frame", ctx};
  }
  EXPECT_EQ(tracer.tail_pending("mirror", "frame"), 4u);
  tracer.set_tail_sampling("mirror", "frame", 1, 0);  // remove
  EXPECT_EQ(tracer.tail_pending(), 0u);
  std::uint64_t weighted = 0;
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.name == "frame") weighted += s.weight;
  }
  EXPECT_EQ(weighted, 4u) << "the flush conserves every buffered span";
  tracer.end(root);
}

// ------------------------------------------------------------- links -----

TEST(Links, TypedCrossTraceEdgesAttachAndCap) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  const std::uint64_t first = tracer.begin_detached("scheduler", "job");
  const obs::TraceContext pred = tracer.context_of(first);
  tracer.end(first);

  const std::uint64_t second = tracer.begin_detached("scheduler", "job");
  tracer.add_link(second, obs::SpanLink{pred.trace, pred.span, "retry_of"});
  EXPECT_EQ(tracer.links_added(), 1u);
  // Past the per-span cap, extras are dropped silently.
  for (std::uint64_t i = 0; i < obs::Tracer::kMaxLinksPerSpan + 2; ++i) {
    tracer.add_link(second, obs::SpanLink{pred.trace, pred.span, "extra"});
  }
  EXPECT_EQ(tracer.links_added(),
            static_cast<std::uint64_t>(obs::Tracer::kMaxLinksPerSpan));
  tracer.add_link(999, obs::SpanLink{pred.trace, pred.span, "x"});  // unknown
  EXPECT_EQ(tracer.links_added(),
            static_cast<std::uint64_t>(obs::Tracer::kMaxLinksPerSpan));
  tracer.end(second);

  const obs::SpanRecord& retry = tracer.spans().back();
  ASSERT_EQ(retry.links.size(), obs::Tracer::kMaxLinksPerSpan);
  EXPECT_EQ(retry.links[0].trace, pred.trace);
  EXPECT_EQ(retry.links[0].span, pred.span);
  EXPECT_EQ(retry.links[0].kind, "retry_of");
}

// Perfetto rendering carries both analytics extensions: a non-unit sampling
// weight and the typed link, as plain args Perfetto will display.
TEST(Links, PerfettoRendersWeightAndLinkArgs) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  tracer.set_sampling("mirror", "frame", 2);
  const std::uint64_t root = tracer.begin_detached("mirror", "session");
  const obs::TraceContext ctx = tracer.context_of(root);
  const std::uint64_t a = tracer.begin_detached("mirror", "frame", ctx);
  tracer.end(a);
  const std::uint64_t b = tracer.begin_detached("mirror", "frame", ctx);
  tracer.end(b);  // sampled out: credits a's record with weight 2
  tracer.add_link(root, obs::SpanLink{7, 3, "retry_of"});
  tracer.end(root);

  const std::string json = obs::encode_trace_json(tracer.spans());
  EXPECT_NE(json.find("\"weight\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"link.retry_of\":\"7:3\""), std::string::npos)
      << json;

  std::ostringstream jsonl;
  tracer.write_jsonl(jsonl);
  EXPECT_NE(jsonl.str().find("\"weight\":2"), std::string::npos);
  EXPECT_NE(jsonl.str().find("retry_of"), std::string::npos);
}

// ----------------------------------------------------------- aggregate ----

// Hand-built two-trace forest exercising the flame fold: merging by
// (component, name) path, weighted counts, and self time under overlapping
// and gapped children.
TEST(Aggregate, FlameMergesPathsAndComputesSelfTime) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  for (int t = 0; t < 2; ++t) {
    now_us = 0;
    const std::uint64_t root = tracer.begin_detached("scheduler", "job");
    const obs::TraceContext ctx = tracer.context_of(root);
    const std::uint64_t run = tracer.begin_detached("scheduler", "run_job",
                                                    ctx);
    now_us = 100;
    const std::uint64_t flow =
        tracer.begin_detached("net", "flow", tracer.context_of(run));
    now_us = 400;
    tracer.end(flow);  // net/flow: 100..400 under run_job
    now_us = 600;
    tracer.end(run);  // run_job: 0..600
    now_us = 1000;
    tracer.end(root);  // job: 0..1000, 400us uncovered tail
  }
  const obs::FlameNode forest = obs::build_flame(tracer.spans());
  EXPECT_EQ(forest.count, 2u) << "forest root sums its children's counts";
  const obs::FlameNode* job = forest.find("scheduler", "job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->count, 2u);
  EXPECT_EQ(job->total_us, 2000);
  EXPECT_EQ(job->self_us, 800);  // 2 x (1000 - 600 covered by run_job)
  const obs::FlameNode* run = job->find("scheduler", "run_job");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->count, 2u);
  EXPECT_EQ(run->total_us, 1200);
  EXPECT_EQ(run->self_us, 600);  // 2 x (600 - 300 covered by net/flow)
  const obs::FlameNode* flow = run->find("net", "flow");
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->total_us, 600);
  EXPECT_EQ(flow->self_us, 600);  // leaf: self == total
  EXPECT_EQ(job->find("net", "flow"), nullptr)
      << "path-sensitive merge must not flatten flow under job";
}

// A span whose parent is missing from the input (buffer overflow, filtered
// query) folds in as a root instead of vanishing from the flame.
TEST(Aggregate, OrphanSpansBecomeFlameRoots) {
  std::vector<obs::SpanRecord> spans(1);
  spans[0].id = 5;
  spans[0].parent = 99;  // not in the input
  spans[0].trace = 1;
  spans[0].component = "store";
  spans[0].name = "append_capture";
  spans[0].start_us = 0;
  spans[0].end_us = 50;
  const obs::FlameNode forest = obs::build_flame(spans);
  const obs::FlameNode* node = forest.find("store", "append_capture");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 1u);
  EXPECT_EQ(node->total_us, 50);
}

// Span ids are only unique within one tracer. Pooling buffers from several
// tracers can repeat an id; the fold must keep the first record per id and
// drop the rest, or the shared children lookup would re-walk subtrees once
// per duplicate (exponential in depth).
TEST(Aggregate, DuplicateSpanIdsFoldOnce) {
  std::vector<obs::SpanRecord> spans(3);
  spans[0].id = 1;
  spans[0].trace = 1;
  spans[0].component = "scheduler";
  spans[0].name = "job";
  spans[0].start_us = 0;
  spans[0].end_us = 100;
  spans[1] = spans[0];  // same id from another tracer's buffer
  spans[1].component = "mirror";
  spans[1].name = "frame";
  spans[2].id = 2;
  spans[2].parent = 1;
  spans[2].trace = 1;
  spans[2].component = "net";
  spans[2].name = "flow";
  spans[2].start_us = 10;
  spans[2].end_us = 40;
  const obs::FlameNode forest = obs::build_flame(spans);
  const obs::FlameNode* job = forest.find("scheduler", "job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->count, 1u);
  const obs::FlameNode* flow = job->find("net", "flow");
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->count, 1u) << "the child folds once, not once per duplicate";
  EXPECT_EQ(forest.find("mirror", "frame"), nullptr)
      << "the duplicate id's record is dropped, not folded as a second root";
}

// Weighted spans scale both count and duration: one kept span standing for
// three sampled siblings contributes three spans' worth to the flame.
TEST(Aggregate, FlameScalesByWeight) {
  std::vector<obs::SpanRecord> spans(1);
  spans[0].id = 1;
  spans[0].trace = 1;
  spans[0].component = "mirror";
  spans[0].name = "frame";
  spans[0].start_us = 0;
  spans[0].end_us = 10;
  spans[0].weight = 3;
  const obs::FlameNode forest = obs::build_flame(spans);
  const obs::FlameNode* node = forest.find("mirror", "frame");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 3u);
  EXPECT_EQ(node->total_us, 30);
  EXPECT_EQ(node->self_us, 30);
}

TEST(Aggregate, SegmentMappingCoversEveryComponent) {
  const auto seg = [](const char* component, const char* name) {
    obs::SpanRecord s;
    s.component = component;
    s.name = name;
    return obs::segment_of(s);
  };
  EXPECT_EQ(seg("scheduler", "job"), obs::PathSegment::kQueueWait);
  EXPECT_EQ(seg("scheduler", "run_job"), obs::PathSegment::kDispatch);
  EXPECT_EQ(seg("net", "flow"), obs::PathSegment::kNetwork);
  EXPECT_EQ(seg("net", "vpn_connect"), obs::PathSegment::kNetwork);
  EXPECT_EQ(seg("api", "start_monitor"), obs::PathSegment::kCapture);
  EXPECT_EQ(seg("monsoon", "synth_block"), obs::PathSegment::kCapture);
  EXPECT_EQ(seg("store", "append_capture"), obs::PathSegment::kStore);
  EXPECT_EQ(seg("mirror", "session"), obs::PathSegment::kMirror);
  EXPECT_EQ(seg("novel", "thing"), obs::PathSegment::kOther);
  EXPECT_STREQ(obs::path_segment_name(obs::PathSegment::kQueueWait),
               "queue_wait");
  EXPECT_STREQ(obs::path_segment_name(obs::PathSegment::kOther), "other");
}

// The partition contract: every microsecond of the root interval lands in
// exactly one segment, deepest-span-wins, so the segment sums equal the
// root duration no matter how children overlap or leave gaps.
TEST(Aggregate, CriticalPathPartitionsTheRootInterval) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  const std::uint64_t root = tracer.begin_detached("scheduler", "job");
  tracer.set_attr(root, "job", std::string_view{"job-1"});
  const obs::TraceContext ctx = tracer.context_of(root);
  now_us = 100;  // 0..100: queue wait (root self time)
  const std::uint64_t run = tracer.begin_detached("scheduler", "run_job",
                                                  ctx);
  now_us = 150;
  const std::uint64_t api = tracer.begin_detached("api", "start_monitor",
                                                  tracer.context_of(run));
  now_us = 250;
  tracer.end(api);  // 150..250 capture, nested inside dispatch
  now_us = 300;
  tracer.end(run);  // 100..300 dispatch minus the api slice
  const std::uint64_t flow = tracer.begin_detached("net", "flow", ctx);
  now_us = 500;
  tracer.end(flow);  // 300..500 network
  now_us = 600;
  tracer.end(root);  // 500..600 idles back in queue_wait

  const auto paths = obs::critical_paths(tracer.spans());
  ASSERT_EQ(paths.size(), 1u);
  const obs::CriticalPath& cp = paths[0];
  EXPECT_EQ(cp.job, "job-1");
  EXPECT_EQ(cp.total_us, 600);
  EXPECT_EQ(cp.segment(obs::PathSegment::kQueueWait), 200);
  EXPECT_EQ(cp.segment(obs::PathSegment::kDispatch), 100);
  EXPECT_EQ(cp.segment(obs::PathSegment::kCapture), 100);
  EXPECT_EQ(cp.segment(obs::PathSegment::kNetwork), 200);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < obs::kPathSegmentCount; ++i) {
    sum += cp.segment_us[i];
  }
  EXPECT_EQ(sum, cp.total_us) << "attribution must partition the interval";
}

// Traces without a scheduler/job root (mirror-only work, bare harness
// spans) carry no job to attribute and are skipped.
TEST(Aggregate, CriticalPathsSkipNonJobTraces) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  const std::uint64_t session = tracer.begin_detached("mirror", "session");
  now_us = 50;
  tracer.end(session);
  EXPECT_TRUE(obs::critical_paths(tracer.spans()).empty());
}

TEST(Aggregate, EncodeFlameJsonShape) {
  std::int64_t now_us = 0;
  obs::Tracer tracer{[&] { return now_us; }};
  const std::uint64_t root = tracer.begin_detached("scheduler", "job");
  tracer.set_attr(root, "job", std::string_view{"job-1"});
  now_us = 100;
  tracer.end(root);
  const std::string json = obs::encode_flame_json(
      obs::build_flame(tracer.spans()), obs::critical_paths(tracer.spans()));
  EXPECT_EQ(json.rfind("{\"flame\":", 0), 0u) << json;
  EXPECT_NE(json.find("\"critical_paths\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"job\":\"job-1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_wait\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"self_us\":100"), std::string::npos) << json;
}

// ------------------------------------------------------------ logging ----

TEST(Logging, StructuredFieldsReachTheSink) {
  util::LogCapture capture;
  BLAB_INFO_KV("scheduler", "job started", {"job", "job-7"},
               {"vp", "turin-pi"});
  ASSERT_EQ(capture.size(), 1u);
  EXPECT_TRUE(capture.has_field("job", "job-7"));
  EXPECT_TRUE(capture.has_field("vp", "turin-pi"));
  EXPECT_FALSE(capture.has_field("job", "job-8"));
  // The flat rendering keeps key=value pairs greppable.
  EXPECT_TRUE(capture.contains("job=job-7"));
}

TEST(Logging, PlainStreamFormStillWorks) {
  util::LogCapture capture;
  BLAB_INFO("net", "delivered " << 3 << " messages");
  EXPECT_TRUE(capture.contains("delivered 3 messages"));
}

TEST(Logging, ConcurrentLoggingUnderCaptureIsSafe) {
  util::LogCapture capture;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        BLAB_INFO_KV("pool", "tick", {"worker", std::to_string(t)});
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(capture.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(Logging, OncePerKeySuppressesRepeats) {
  util::OncePerKey once;
  EXPECT_TRUE(once.first("a"));
  EXPECT_FALSE(once.first("a"));
  EXPECT_TRUE(once.first("b"));
  EXPECT_EQ(once.seen(), 2u);
  once.reset();
  EXPECT_TRUE(once.first("a"));
}

// ------------------------------------------------------- determinism -----

// Acceptance: two from-scratch runs of the same seed must render
// byte-identical Prometheus snapshots — telemetry is part of the replay
// contract, not an observer effect.
TEST(DstMetrics, SameSeedRendersByteIdenticalSnapshots) {
  const auto seeds = dst::default_corpus(3);
  for (std::uint64_t seed : seeds) {
    const auto spec = dst::generate_scenario(seed);
    const auto first = dst::run_scenario(spec);
    const auto second = dst::run_scenario(spec);
    ASSERT_FALSE(first.metrics_text.empty()) << "seed " << seed;
    EXPECT_EQ(first.metrics_text, second.metrics_text)
        << "seed " << seed << " telemetry is not deterministic";
  }
}

// Acceptance: a real scenario run's snapshot carries series from every
// instrumented layer — scheduler, capture store, power monitor, and the
// simulator kernel itself.
TEST(DstMetrics, ScenarioSnapshotCoversAllInstrumentedLayers) {
  const auto result = dst::run_scenario(dst::default_corpus(1)[0]);
  EXPECT_TRUE(result.ok()) << result.violation_summary();
  for (const char* series :
       {"blab_scheduler_jobs_submitted_total", "blab_store_records",
        "blab_monsoon_samples_synthesized_total",
        "blab_sim_events_dispatched_total", "blab_sim_pending_events"}) {
    EXPECT_NE(result.metrics_text.find(series), std::string::npos)
        << "snapshot is missing " << series;
  }
  EXPECT_GT(result.metrics.value_or("blab_sim_events_dispatched_total"), 0.0);
}

// Concurrency smoke: the pooled corpus runner with 4 workers keeps every
// oracle green (including metric-accounting) and still produces non-empty
// per-seed snapshots.
TEST(DstMetrics, PooledCorpusKeepsOraclesGreen) {
  const auto seeds = dst::default_corpus(8);
  const auto results = dst::run_corpus(seeds, 4);
  ASSERT_EQ(results.size(), seeds.size());
  for (const auto& result : results) {
    EXPECT_TRUE(result.ok()) << result.violation_summary();
    EXPECT_FALSE(result.metrics_text.empty()) << "seed " << result.seed;
  }
}

// ------------------------------------------------------------ REST -------

TEST(RestMetrics, MetricsEndpointServesTheLiveRegistry) {
  sim::Simulator sim;
  net::Network net{sim, 0x0B5ULL};
  controller::RestBackend rest{net, "ctrl.node1"};
  sim.schedule_after(util::Duration::millis(10), [] {}, "warmup");
  sim.run_all();

  auto prom = rest.call("metrics", "");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom.value().find("# TYPE blab_sim_events_dispatched_total "
                              "counter"),
            std::string::npos);
  EXPECT_NE(prom.value().find("blab_rest_requests_total"), std::string::npos);

  auto json = rest.call("metrics", "format=json");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json.value().rfind("{\"series\":[", 0), 0u);
  // The JSON call observed the counter bumped by the first call.
  EXPECT_NE(json.value().find("\"blab_rest_requests_total\""),
            std::string::npos);
  EXPECT_EQ(rest.requests_served(), 2u);
}

TEST(RestTraces, TracesEndpointResolvesJobIdsAndTraceIds) {
  sim::Simulator sim;
  net::Network net{sim, 0x0B5ULL};
  controller::RestBackend rest{net, "ctrl.node1"};
  obs::Tracer& tracer = sim.tracer();
  const std::uint64_t root = tracer.begin_detached("scheduler", "job");
  tracer.set_attr(root, "job", std::string_view{"job-1"});
  const obs::TraceContext ctx = tracer.context_of(root);
  { obs::ScopedSpan run{&tracer, "scheduler", "run_job", ctx}; }
  tracer.end(root);

  auto list = rest.call("traces", "");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().rfind("{\"traces\":[", 0), 0u) << list.value();
  EXPECT_NE(list.value().find("\"job\":\"job-1\""), std::string::npos);

  auto by_job = rest.call("traces", "job_id=job-1");
  ASSERT_TRUE(by_job.ok());
  EXPECT_EQ(by_job.value().rfind("{\"traceEvents\":[", 0), 0u)
      << by_job.value();
  EXPECT_NE(by_job.value().find("\"name\":\"run_job\""), std::string::npos);
  EXPECT_NE(by_job.value().find("\"name\":\"job\""), std::string::npos);

  auto by_trace = rest.call("traces", "trace_id=" + std::to_string(ctx.trace));
  ASSERT_TRUE(by_trace.ok());
  EXPECT_EQ(by_trace.value(), by_job.value());

  auto missing = rest.call("traces", "job_id=job-999");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().str().find("no trace for job job-999"),
            std::string::npos);
}

// ----------------------------------------------------- tracing e2e -------

// Acceptance: a real scenario attaches at least one histogram exemplar, and
// every exemplar's trace id resolves to finished spans of that same trace —
// the /metrics -> /traces pivot never dangles.
TEST(DstTraces, ScenarioExemplarsResolveToRecordedTraces) {
  const auto result = dst::run_scenario(dst::default_corpus(1)[0]);
  EXPECT_TRUE(result.ok()) << result.violation_summary();
  ASSERT_FALSE(result.spans.empty());
  EXPECT_EQ(result.trace_json.rfind("{\"traceEvents\":[", 0), 0u);

  std::set<std::uint64_t> trace_ids;
  for (const auto& span : result.spans) trace_ids.insert(span.trace);

  std::size_t exemplars = 0;
  for (const auto& series : result.metrics.series) {
    for (const auto& ex : series.exemplars) {
      if (!ex.valid()) continue;
      ++exemplars;
      EXPECT_EQ(trace_ids.count(ex.trace), 1u)
          << series.name << " exemplar names unknown trace " << ex.trace;
    }
  }
  EXPECT_GT(exemplars, 0u) << "no exemplar attached anywhere in the scenario";
}

}  // namespace
