// Unit tests for the access server: auth matrix, certificates, registry,
// scheduler, onboarding, maintenance jobs.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "device/android.hpp"
#include "device/browser.hpp"
#include "server/access_server.hpp"
#include "server/auth.hpp"
#include "server/certs.hpp"
#include "server/maintenance.hpp"
#include "server/registry.hpp"
#include "server/scheduler.hpp"

namespace blab::server {
namespace {

using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------- auth ----

TEST(AuthMatrixTest, DefaultsDenyByDefault) {
  AuthorizationMatrix matrix;
  EXPECT_TRUE(matrix.allows(Role::kAdmin, Permission::kApprovePipeline));
  EXPECT_TRUE(matrix.allows(Role::kExperimenter, Permission::kCreateJob));
  EXPECT_FALSE(matrix.allows(Role::kExperimenter,
                             Permission::kApprovePipeline));
  EXPECT_FALSE(matrix.allows(Role::kTester, Permission::kCreateJob));
  EXPECT_TRUE(matrix.allows(Role::kTester, Permission::kInteractiveSession));
}

TEST(AuthMatrixTest, GrantAndRevoke) {
  AuthorizationMatrix matrix;
  matrix.revoke(Role::kExperimenter, Permission::kCreateJob);
  EXPECT_FALSE(matrix.allows(Role::kExperimenter, Permission::kCreateJob));
  matrix.grant(Role::kTester, Permission::kCreateJob);
  EXPECT_TRUE(matrix.allows(Role::kTester, Permission::kCreateJob));
}

TEST(UserDirectoryTest, RegisterAuthenticateAuthorize) {
  UserDirectory users;
  auto token = users.register_user("alice", Role::kExperimenter);
  ASSERT_TRUE(token.ok());
  EXPECT_FALSE(users.register_user("alice", Role::kTester).ok());
  EXPECT_FALSE(users.register_user("", Role::kTester).ok());

  auto user = users.authenticate(token.value());
  ASSERT_TRUE(user.ok());
  EXPECT_EQ(user.value()->username, "alice");
  EXPECT_FALSE(users.authenticate("tok-bogus").ok());

  EXPECT_TRUE(users.authorize(token.value(), Permission::kCreateJob).ok());
  EXPECT_FALSE(
      users.authorize(token.value(), Permission::kApprovePipeline).ok());
}

TEST(UserDirectoryTest, HttpsRequired) {
  UserDirectory users;
  auto token = users.register_user("alice", Role::kAdmin);
  ASSERT_TRUE(token.ok());
  const auto st = users.authorize(token.value(), Permission::kViewConsole,
                                  /*over_https=*/false);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::ErrorCode::kPermissionDenied);
}

TEST(UserDirectoryTest, DisabledAccountsRejected) {
  UserDirectory users;
  auto token = users.register_user("bob", Role::kExperimenter);
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(users.disable_user("bob").ok());
  EXPECT_FALSE(users.authenticate(token.value()).ok());
  EXPECT_FALSE(users.disable_user("nobody").ok());
}

TEST(UserDirectoryTest, TokensAreUniquePerUser) {
  UserDirectory users;
  auto a = users.register_user("u1", Role::kTester);
  auto b = users.register_user("u2", Role::kTester);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value(), b.value());
}

// --------------------------------------------------------------- certs ----

TEST(CertsTest, IssueAndLifetime) {
  CertificateManager certs;
  EXPECT_TRUE(certs.needs_renewal(TimePoint::epoch())) << "never issued";
  const auto& cert = certs.issue(TimePoint::epoch());
  EXPECT_EQ(cert.common_name, "*.batterylab.dev");
  EXPECT_TRUE(cert.valid_at(TimePoint::epoch() + Duration::seconds(86400)));
  EXPECT_FALSE(certs.needs_renewal(TimePoint::epoch()));
  // 2/3 into the 90-day lifetime: renewal due.
  const auto later = TimePoint::epoch() + Duration::seconds(61.0 * 86400.0);
  EXPECT_TRUE(certs.needs_renewal(later));
}

TEST(CertsTest, DeploymentTracking) {
  CertificateManager certs;
  EXPECT_FALSE(certs.deploy_to("node1", TimePoint::epoch()).ok())
      << "nothing issued yet";
  certs.issue(TimePoint::epoch());
  ASSERT_TRUE(certs.deploy_to("node1", TimePoint::epoch()).ok());
  EXPECT_TRUE(certs.node_current("node1"));
  EXPECT_FALSE(certs.node_current("node2"));
  // Re-issue: node1 becomes stale.
  certs.issue(TimePoint::epoch() + Duration::seconds(86400));
  EXPECT_FALSE(certs.node_current("node1"));
}

TEST(CertsTest, ExpiredCertCannotDeploy) {
  CertificateManager certs;
  certs.issue(TimePoint::epoch());
  const auto after_expiry =
      TimePoint::epoch() + CertificateManager::kLifetime +
      Duration::seconds(1);
  EXPECT_FALSE(certs.deploy_to("node1", after_expiry).ok());
}

// ---------------------------------------------------- registry fixture ----

class PlatformFixture : public ::testing::Test {
 protected:
  PlatformFixture() : net{sim, 100}, server{sim, net} {
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(Duration::millis(4), 900.0));
    vp = std::make_unique<api::VantagePoint>(sim, net);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(Duration::millis(6), 200.0));
    device::DeviceSpec spec;
    spec.serial = "J7DUO-1";
    auto dev = vp->add_device(spec);
    EXPECT_TRUE(dev.ok());
  }

  std::string add_user(const std::string& name, Role role) {
    auto token = server.users().register_user(name, role);
    EXPECT_TRUE(token.ok());
    return token.value();
  }

  sim::Simulator sim;
  net::Network net;
  AccessServer server;
  std::unique_ptr<api::VantagePoint> vp;
};

TEST_F(PlatformFixture, OnboardingRunsTheFullTutorial) {
  ASSERT_TRUE(server.onboard_vantage_point("node1", *vp).ok());
  const NodeRecord* node = server.registry().find("node1");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->state, NodeState::kApproved);
  EXPECT_TRUE(node->ssh_key_installed);
  EXPECT_TRUE(node->ip_whitelisted);
  // DNS entry exists and resolves to the controller.
  auto host = server.dns().resolve("node1.batterylab.dev");
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host.value(), vp->controller_host());
  // Certificate deployed.
  EXPECT_TRUE(server.certs().node_current("node1"));
  // Double onboarding rejected.
  EXPECT_FALSE(server.onboard_vantage_point("node1", *vp).ok());
}

TEST_F(PlatformFixture, ApprovalRequiresOnboardingSteps) {
  VantagePointRegistry& reg = server.registry();
  ASSERT_TRUE(reg.register_node("raw", vp.get()).ok());
  EXPECT_FALSE(reg.approve("raw").ok()) << "no key, no whitelist";
  ASSERT_TRUE(reg.mark_key_installed("raw").ok());
  EXPECT_FALSE(reg.approve("raw").ok()) << "still no whitelist";
  ASSERT_TRUE(reg.mark_ip_whitelisted("raw").ok());
  EXPECT_TRUE(reg.approve("raw").ok());
  EXPECT_EQ(reg.approved_labels().size(), 1u);
}

TEST_F(PlatformFixture, RetiredNodeLeavesDns) {
  ASSERT_TRUE(server.onboard_vantage_point("node1", *vp).ok());
  ASSERT_TRUE(server.registry().retire("node1").ok());
  EXPECT_FALSE(server.dns().resolve("node1.batterylab.dev").ok());
  EXPECT_EQ(server.registry().vantage_point("node1"), nullptr);
}

TEST_F(PlatformFixture, SshExecReachesController) {
  ASSERT_TRUE(server.onboard_vantage_point("node1", *vp).ok());
  vp->controller().ssh_server().set_command_handler(
      [](const std::string& cmd) {
        return net::SshCommandResult{0, "pi:" + cmd};
      });
  auto result = server.ssh_exec("node1", "uptime");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().output, "pi:uptime");
  EXPECT_FALSE(server.ssh_exec("ghost", "uptime").ok());
}

TEST_F(PlatformFixture, SshFromStrangerRejected) {
  ASSERT_TRUE(server.onboard_vantage_point("node1", *vp).ok());
  // A random host with a random key must be rejected by both IP lockdown
  // and the authorized_keys check.
  net.add_link("attacker", vp->controller_host(),
               net::LinkSpec::symmetric(Duration::millis(30), 10.0));
  net::SshClient mallory{net, "attacker",
                         net::SshKeyPair::generate("mallory")};
  auto result = mallory.exec_sync(
      net::Address{vp->controller_host(), net::kSshPort}, "id");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::ErrorCode::kPermissionDenied);
}

// ----------------------------------------------------------- scheduler ----

class SchedulerFixture : public PlatformFixture {
 protected:
  SchedulerFixture() {
    EXPECT_TRUE(server.onboard_vantage_point("node1", *vp).ok());
    admin_token = add_user("root", Role::kAdmin);
    exp_token = add_user("alice", Role::kExperimenter);
    tester_token = add_user("tess", Role::kTester);
  }

  Job trivial_job(const std::string& name) {
    Job job;
    job.name = name;
    job.script = [](JobContext& ctx) {
      ctx.workspace->log("ran on " + ctx.device_serial);
      return util::Status::ok_status();
    };
    return job;
  }

  std::string admin_token, exp_token, tester_token;
};

TEST_F(SchedulerFixture, SubmissionRequiresPermission) {
  EXPECT_FALSE(server.submit_job(tester_token, trivial_job("t")).ok())
      << "testers cannot create jobs";
  EXPECT_FALSE(server.submit_job("tok-invalid", trivial_job("t")).ok());
  auto id = server.submit_job(exp_token, trivial_job("ok"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(server.scheduler().find(id.value())->owner, "alice");
}

TEST_F(SchedulerFixture, PipelineApprovalGate) {
  auto id = server.submit_job(exp_token, trivial_job("gated"));
  ASSERT_TRUE(id.ok());
  // Unapproved: dispatch skips it.
  auto ran = server.run_queue(exp_token);
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(ran.value(), 0u);
  // Experimenters cannot approve their own pipelines.
  EXPECT_FALSE(server.approve_pipeline(exp_token, id.value()).ok());
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  ran = server.run_queue(exp_token);
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(ran.value(), 1u);
  const Job* job = server.scheduler().find(id.value());
  EXPECT_EQ(job->state, JobState::kSucceeded);
  EXPECT_FALSE(job->workspace.logs().empty());
}

TEST_F(SchedulerFixture, DeviceConstraintRespected) {
  Job job = trivial_job("pinned");
  job.constraints.device_serial = "NOPE";
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 0u)
      << "no such device anywhere";

  Job ok_job = trivial_job("pinned-ok");
  ok_job.constraints.device_serial = "J7DUO-1";
  auto id2 = server.submit_job(exp_token, std::move(ok_job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id2.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
}

TEST_F(SchedulerFixture, ModelConstraintRespected) {
  Job job = trivial_job("model");
  job.constraints.device_model = "Pixel 9";
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 0u);
}

TEST_F(SchedulerFixture, FailingScriptMarksJobFailed) {
  Job job;
  job.name = "boom";
  job.script = [](JobContext&) -> util::Status {
    return util::make_error(util::ErrorCode::kUnknown, "script exploded");
  };
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  const Job* j = server.scheduler().find(id.value());
  EXPECT_EQ(j->state, JobState::kFailed);
  EXPECT_NE(j->failure_reason.find("script exploded"), std::string::npos);
}

TEST_F(SchedulerFixture, CrashedScriptReleasesMonitor) {
  Job job;
  job.name = "leaky";
  job.script = [](JobContext& ctx) -> util::Status {
    // Start a measurement and "crash" without stopping it.
    if (auto st = ctx.api->power_monitor(); !st.ok()) return st;
    if (auto st = ctx.api->set_voltage(3.85); !st.ok()) return st;
    if (auto st = ctx.api->start_monitor(ctx.device_serial); !st.ok()) {
      return st;
    }
    return util::make_error(util::ErrorCode::kUnknown, "crash mid-capture");
  };
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  EXPECT_FALSE(vp->monitor().capturing())
      << "scheduler safety net must stop the capture";
}

// ---------------------------------------------------------- auto-retry ----

class RetryFixture : public SchedulerFixture {
 protected:
  Job failing_job(const std::string& name) {
    Job job;
    job.name = name;
    job.script = [](JobContext&) -> util::Status {
      return util::make_error(util::ErrorCode::kUnknown, "script exploded");
    };
    return job;
  }
};

TEST_F(RetryFixture, AutoRetryDisabledByDefault) {
  auto id = server.submit_job(exp_token, failing_job("boom"));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  const Job* j = server.scheduler().find(id.value());
  EXPECT_EQ(j->state, JobState::kFailed);
  EXPECT_FALSE(j->retried_by.valid()) << "max_attempts=1 means no retries";
  EXPECT_EQ(server.scheduler().auto_retries(), 0u);
}

TEST_F(RetryFixture, AutoRetryDefersByBackoffAndKeepsLineage) {
  const Duration backoff = Duration::minutes(5);
  server.scheduler().set_retry_policy({.max_attempts = 2, .backoff = backoff});
  auto id = server.submit_job(exp_token, failing_job("boom"));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());

  // First dispatch runs only the original: the auto-retry is queued with a
  // not_before in the future, so the same dispatch pass cannot run it.
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  const Job* original = server.scheduler().find(id.value());
  ASSERT_NE(original, nullptr);
  EXPECT_EQ(original->state, JobState::kFailed);
  ASSERT_TRUE(original->retried_by.valid());
  const JobId retry_id = original->retried_by;
  const Job* retry = server.scheduler().find(retry_id);
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(retry->retry_of, id.value());
  EXPECT_EQ(retry->attempt, 2u);
  EXPECT_EQ(retry->not_before, sim.now() + backoff);
  EXPECT_TRUE(retry->pipeline_approved) << "approval carries to the retry";

  // Before the backoff elapses the retry stays parked in the queue.
  EXPECT_EQ(server.run_queue(exp_token).value(), 0u);
  sim.run_for(backoff);
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  retry = server.scheduler().find(retry_id);
  EXPECT_EQ(retry->state, JobState::kFailed);
  EXPECT_FALSE(retry->retried_by.valid())
      << "max_attempts=2 caps the lineage at one auto-retry";

  EXPECT_EQ(server.scheduler().auto_retries(), 1u);
  const auto snap = sim.metrics().snapshot();
  EXPECT_EQ(snap.value_or("blab_scheduler_auto_retries_total",
                          {{"owner", "alice"}}),
            1.0);
  EXPECT_EQ(snap.value_or("blab_scheduler_node_jobs_failed_total",
                          {{"vp", "node1"}}),
            2.0);
}

TEST_F(RetryFixture, OwnerBudgetExhaustionIsCountedNotRetried) {
  const Duration backoff = Duration::minutes(1);
  server.scheduler().set_retry_policy(
      {.max_attempts = 3, .backoff = backoff, .owner_budget = 1});
  auto id = server.submit_job(exp_token, failing_job("boom"));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());

  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);  // attempt 1 + retry
  sim.run_for(backoff);
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);  // attempt 2 fails
  const Job* original = server.scheduler().find(id.value());
  ASSERT_TRUE(original->retried_by.valid());
  const Job* retry = server.scheduler().find(original->retried_by);
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(retry->state, JobState::kFailed);
  EXPECT_FALSE(retry->retried_by.valid())
      << "alice's budget of 1 auto-retry is spent";

  EXPECT_EQ(server.scheduler().auto_retries(), 1u);
  const auto snap = sim.metrics().snapshot();
  EXPECT_EQ(snap.value_or("blab_scheduler_retry_budget_exhausted_total",
                          {{"owner", "alice"}}),
            1.0);
}

TEST_F(SchedulerFixture, JobsRunSequentiallyPerDevice) {
  std::vector<std::string> order;
  for (int i = 0; i < 3; ++i) {
    Job job;
    job.name = "job" + std::to_string(i);
    job.script = [&order, i](JobContext& ctx) {
      order.push_back("job" + std::to_string(i));
      // While we run, the device must be marked busy.
      (void)ctx;
      return util::Status::ok_status();
    };
    auto id = server.submit_job(exp_token, std::move(job));
    ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  }
  EXPECT_EQ(server.run_queue(exp_token).value(), 3u);
  EXPECT_EQ(order,
            (std::vector<std::string>{"job0", "job1", "job2"}));
}

TEST_F(SchedulerFixture, BusyGuardVisibleInsideScript) {
  bool checked = false;
  Job job;
  job.name = "introspect";
  job.script = [&](JobContext& ctx) {
    checked = server.scheduler().device_busy(ctx.device_serial);
    return util::Status::ok_status();
  };
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  EXPECT_TRUE(checked) << "one job at a time per device (§3.1)";
  EXPECT_FALSE(server.scheduler().device_busy("J7DUO-1"));
}

TEST_F(SchedulerFixture, AbortQueuedJob) {
  auto id = server.submit_job(exp_token, trivial_job("doomed"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.scheduler().abort(id.value()).ok());
  EXPECT_EQ(server.scheduler().find(id.value())->state, JobState::kAborted);
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 0u);
  EXPECT_FALSE(server.scheduler().abort(id.value()).ok())
      << "only queued jobs abort";
}

TEST_F(SchedulerFixture, TimedSessionOverrunFlagged) {
  Job job;
  job.name = "slow";
  job.max_duration = Duration::seconds(1);
  job.script = [](JobContext& ctx) {
    ctx.api->vantage_point().simulator().run_for(Duration::seconds(5));
    return util::Status::ok_status();
  };
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  EXPECT_TRUE(server.scheduler().find(id.value())->overran);
}

TEST_F(SchedulerFixture, VpnLocationConstraint) {
  net::VpnProvider vpn{net, "internet"};
  server.scheduler().attach_vpn(&vpn);
  std::string seen_region;
  Job job;
  job.name = "geo";
  job.constraints.network_location = "Japan";
  job.script = [&](JobContext& ctx) {
    auto* dev = ctx.api->vantage_point().find_device(ctx.device_serial);
    seen_region = dev->network_region();
    return util::Status::ok_status();
  };
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  EXPECT_EQ(seen_region, "Japan");
  // Tunnel torn down afterwards.
  EXPECT_EQ(vpn.active_location(vp->controller_host()), "");
  EXPECT_EQ(vp->find_device("J7DUO-1")->network_region(), "");
}

TEST_F(SchedulerFixture, LocationConstraintWithoutVpnStaysQueued) {
  Job job = trivial_job("geo-no-vpn");
  job.constraints.network_location = "Japan";
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 0u);
  EXPECT_EQ(server.scheduler().find(id.value())->state, JobState::kQueued);
}

TEST_F(SchedulerFixture, LowControllerCpuConstraintDefersDispatch) {
  // §3.1: jobs run when "no other test is running (required) and low CPU
  // utilization (optional)". Saturate the Pi, require a low-CPU window.
  controller::ServiceDemand hog;
  hog.cpu = 0.70;
  vp->controller().resources().register_service("hog", hog);

  Job job = trivial_job("picky");
  job.constraints.max_controller_cpu = 0.50;
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 0u)
      << "controller too loaded";
  EXPECT_EQ(server.scheduler().find(id.value())->state, JobState::kQueued);

  vp->controller().resources().unregister_service("hog");
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  EXPECT_EQ(server.scheduler().find(id.value())->state,
            JobState::kSucceeded);
}

TEST_F(SchedulerFixture, WorkspaceRetentionPurgesOldJobs) {
  // One job finishes now, another after five days; a "several days" TTL
  // sweep clears only the first.
  auto early = server.submit_job(exp_token, trivial_job("early"));
  ASSERT_TRUE(server.approve_pipeline(admin_token, early.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);

  sim.run_for(Duration::seconds(5.0 * 86400.0));
  auto late = server.submit_job(exp_token, trivial_job("late"));
  ASSERT_TRUE(server.approve_pipeline(admin_token, late.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);

  sim.run_for(Duration::seconds(2.0 * 86400.0));
  EXPECT_EQ(server.scheduler().purge_workspaces(
                Duration::seconds(4.0 * 86400.0)),
            1u);
  EXPECT_TRUE(server.scheduler().find(early.value())->workspace.purged());
  EXPECT_TRUE(server.scheduler().find(early.value())->workspace.logs().empty());
  EXPECT_FALSE(server.scheduler().find(late.value())->workspace.purged());
  EXPECT_FALSE(server.scheduler().find(late.value())->workspace.logs().empty());
  // Idempotent: nothing new to purge.
  EXPECT_EQ(server.scheduler().purge_workspaces(
                Duration::seconds(4.0 * 86400.0)),
            0u);
}

TEST_F(SchedulerFixture, WorkspaceRetentionTtlBoundaryIsInclusive) {
  // A job that finished *exactly* ttl ago is purged: the sweep uses
  // age >= ttl, and this pins that boundary.
  auto id = server.submit_job(exp_token, trivial_job("boundary"));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  const TimePoint finished =
      server.scheduler().find(id.value())->finished_at;

  const Duration ttl = Duration::seconds(3.0 * 86400.0);
  // One microsecond shy of the TTL: survives.
  sim.run_until(finished + ttl - Duration::micros(1));
  EXPECT_EQ(server.scheduler().purge_workspaces(ttl), 0u);
  EXPECT_FALSE(server.scheduler().find(id.value())->workspace.purged());
  // Exactly at the TTL: purged.
  sim.run_until(finished + ttl);
  EXPECT_EQ(server.scheduler().purge_workspaces(ttl), 1u);
  EXPECT_TRUE(server.scheduler().find(id.value())->workspace.purged());
}

TEST_F(SchedulerFixture, AbortRejectsRunningJob) {
  // Jobs run to completion inside dispatch, so the only vantage from which
  // a running job is observable is its own script.
  std::optional<JobId> self;
  util::Status abort_status = util::Status::ok_status();
  bool busy_during = false;
  Job job;
  job.name = "self-abort";
  job.script = [&](JobContext& ctx) {
    busy_during = server.scheduler().device_busy(ctx.device_serial);
    abort_status = server.scheduler().abort(*self);
    return util::Status::ok_status();
  };
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(id.ok());
  self = id.value();
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  EXPECT_TRUE(busy_during);
  EXPECT_FALSE(abort_status.ok()) << "running jobs cannot be aborted";
  EXPECT_EQ(abort_status.error().code,
            util::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(server.scheduler().find(id.value())->state,
            JobState::kSucceeded)
      << "the rejected abort left the run undisturbed";
}

TEST_F(SchedulerFixture, AbortRejectsFinishedJob) {
  auto id = server.submit_job(exp_token, trivial_job("done"));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  const auto st = server.scheduler().abort(id.value());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(server.scheduler().find(id.value())->state,
            JobState::kSucceeded);
}

TEST_F(SchedulerFixture, AbortedJobFreesItsDevice) {
  // Abort a queued job pinned to the only device, then verify the device is
  // not held: a follow-up job on the same serial dispatches immediately.
  Job pinned = trivial_job("condemned");
  pinned.constraints.device_serial = "J7DUO-1";
  auto id = server.submit_job(exp_token, std::move(pinned));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.scheduler().abort(id.value()).ok());
  EXPECT_FALSE(server.scheduler().device_busy("J7DUO-1"));

  Job successor = trivial_job("successor");
  successor.constraints.device_serial = "J7DUO-1";
  auto next = server.submit_job(exp_token, std::move(successor));
  ASSERT_TRUE(server.approve_pipeline(admin_token, next.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  EXPECT_EQ(server.scheduler().find(next.value())->state,
            JobState::kSucceeded);
  EXPECT_FALSE(server.scheduler().device_busy("J7DUO-1"));
}

// --------------------------------------------------------- maintenance ----

TEST_F(SchedulerFixture, MonitorSafetyJobPowersDownIdleMonitor) {
  // Leave the socket on with no measurement running.
  ASSERT_TRUE(vp->power_socket().turn_on().ok());
  Job job = make_monitor_safety_job();
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  EXPECT_FALSE(vp->power_socket().is_on())
      << "idle Monsoon must be powered off (§3.1 safety)";
}

TEST_F(SchedulerFixture, CertRenewalJobRedeploysStaleNodes) {
  // Make the deployed cert stale by re-issuing.
  server.certs().issue(sim.now());
  ASSERT_FALSE(server.certs().node_current("node1"));
  Job job = make_cert_renewal_job(server);
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  EXPECT_TRUE(server.certs().node_current("node1"));
}

TEST_F(SchedulerFixture, FactoryResetClearsPackages) {
  auto* dev = vp->find_device("J7DUO-1");
  auto browser = std::make_unique<device::Browser>(
      *dev, device::BrowserProfile::chrome());
  device::Browser* b = browser.get();
  ASSERT_TRUE(dev->os().install(std::move(browser)).ok());
  ASSERT_TRUE(dev->os().start_activity(b->package()).ok());
  b->on_tap(0, 0);
  b->on_tap(0, 0);
  ASSERT_TRUE(b->first_run_complete());

  Job job = make_factory_reset_job();
  auto id = server.submit_job(exp_token, std::move(job));
  ASSERT_TRUE(server.approve_pipeline(admin_token, id.value()).ok());
  EXPECT_EQ(server.run_queue(exp_token).value(), 1u);
  EXPECT_FALSE(b->first_run_complete()) << "app data cleared";
  EXPECT_FALSE(b->running());
  const Job* j = server.scheduler().find(id.value());
  EXPECT_EQ(j->state, JobState::kSucceeded);
}

}  // namespace
}  // namespace blab::server
