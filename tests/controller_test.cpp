// Unit tests for the Raspberry Pi controller: resource model, Monsoon
// poller service, device registry, REST backend.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "controller/controller.hpp"
#include "controller/monsoon_poller.hpp"
#include "controller/rest_backend.hpp"
#include "hw/power_monitor.hpp"
#include "obs/span.hpp"
#include "util/stats.hpp"

namespace blab::controller {
namespace {

using util::Duration;

// ----------------------------------------------------------- resources ----

class ResourcesTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  ResourceModel res{sim, util::Rng{9}};
};

TEST_F(ResourcesTest, BaseLoadOnly) {
  EXPECT_NEAR(res.cpu_utilization(), res.spec().base_cpu, 1e-9);
  EXPECT_NEAR(res.ram_used_mb(), res.spec().base_ram_mb, 1e-9);
}

TEST_F(ResourcesTest, StaticServiceAddsLoad) {
  ServiceDemand svc;
  svc.cpu = 0.24;
  svc.ram_mb = 18.0;
  res.register_service("poller", svc);
  EXPECT_NEAR(res.cpu_utilization(), res.spec().base_cpu + 0.24, 1e-9);
  EXPECT_NEAR(res.ram_used_mb(), res.spec().base_ram_mb + 18.0, 1e-9);
  res.unregister_service("poller");
  EXPECT_FALSE(res.has_service("poller"));
  EXPECT_NEAR(res.cpu_utilization(), res.spec().base_cpu, 1e-9);
}

TEST_F(ResourcesTest, DynamicServiceFollowsCallback) {
  double knob = 0.1;
  ServiceDemand svc;
  svc.dynamic_cpu = [&knob] { return knob; };
  res.register_service("dyn", svc);
  EXPECT_NEAR(res.cpu_utilization(), res.spec().base_cpu + 0.1, 1e-9);
  knob = 0.6;
  EXPECT_NEAR(res.cpu_utilization(), res.spec().base_cpu + 0.6, 1e-9);
}

TEST_F(ResourcesTest, CpuClampsAtFullSaturation) {
  ServiceDemand heavy;
  heavy.cpu = 0.9;
  res.register_service("a", heavy);
  res.register_service("b", heavy);
  EXPECT_DOUBLE_EQ(res.cpu_utilization(), 1.0);
}

TEST_F(ResourcesTest, JitterSpreadsSamples) {
  ServiceDemand svc;
  svc.cpu = 0.5;
  svc.cpu_jitter = 0.1;
  res.register_service("jittery", svc);
  util::RunningStats stats;
  for (int i = 0; i < 2000; ++i) stats.add(res.cpu_utilization());
  EXPECT_NEAR(stats.mean(), 0.52, 0.01);
  EXPECT_GT(stats.stddev(), 0.02);
}

TEST_F(ResourcesTest, SamplingBuildsTimeline) {
  ServiceDemand svc;
  svc.cpu = 0.3;
  res.register_service("svc", svc);
  res.start_sampling(Duration::millis(100));
  sim.run_for(Duration::seconds(5));
  res.stop_sampling();
  const auto& tl = res.cpu_timeline();
  EXPECT_GE(tl.breakpoints(), 1u);
  EXPECT_NEAR(tl.at(sim.now()), 0.32, 0.01);
}

// -------------------------------------------------------------- poller ----

TEST(MonsoonPollerTest, RegistersLoadWhileActive) {
  sim::Simulator sim;
  ResourceModel res{sim, util::Rng{1}};
  hw::PowerMonitor monitor{sim, util::Rng{2}};
  // A trivial constant load on the monitor's channel.
  class Dummy : public hw::Load {
   public:
    double current_ma(util::TimePoint) const override { return 100.0; }
    std::vector<std::pair<util::TimePoint, double>> current_segments(
        util::TimePoint t0, util::TimePoint) const override {
      return {{t0, 100.0}};
    }
  } load;
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&load);

  MonsoonPoller poller{res, monitor};
  EXPECT_FALSE(poller.stop().ok()) << "not started";
  ASSERT_TRUE(poller.start().ok());
  EXPECT_FALSE(poller.start().ok()) << "double start";
  // §4.2: Monsoon polling costs ~25% Pi CPU.
  EXPECT_NEAR(res.cpu_utilization(), 0.26, 0.04);
  sim.run_for(Duration::seconds(2));
  auto capture = poller.stop();
  ASSERT_TRUE(capture.ok());
  EXPECT_EQ(capture.value().sample_count(), 10000u);
  EXPECT_NEAR(res.cpu_utilization(), res.spec().base_cpu, 1e-9)
      << "polling load released";
}

// ---------------------------------------------------------- controller ----

TEST(ControllerTest, DeviceRegistry) {
  sim::Simulator sim;
  net::Network net{sim};
  Controller ctrl{sim, net, "ctrl.node1", 7};
  device::DeviceSpec spec;
  spec.serial = "X1";
  device::AndroidDevice dev{sim, net, "dev.X1", spec, 1};
  ASSERT_TRUE(ctrl.register_device(&dev).ok());
  EXPECT_FALSE(ctrl.register_device(&dev).ok()) << "duplicate serial";
  EXPECT_FALSE(ctrl.register_device(nullptr).ok());
  EXPECT_EQ(ctrl.device_count(), 1u);
  EXPECT_EQ(ctrl.find_device("X1"), &dev);
  EXPECT_EQ(ctrl.find_device_by_host("dev.X1"), &dev);
  EXPECT_EQ(ctrl.find_device("nope"), nullptr);
  ASSERT_TRUE(ctrl.deregister_device("X1").ok());
  EXPECT_FALSE(ctrl.deregister_device("X1").ok());
}

TEST(ControllerTest, OwnsSshServerOnPort2222) {
  sim::Simulator sim;
  net::Network net{sim};
  Controller ctrl{sim, net, "ctrl.node1", 7};
  EXPECT_EQ(ctrl.ssh_server().address().port, net::kSshPort);
  EXPECT_EQ(ctrl.ssh_server().address().host, "ctrl.node1");
}

// ---------------------------------------------------------------- rest ----

class RestTest : public ::testing::Test {
 protected:
  RestTest() : net{sim, 4}, rest{net, "ctrl.node1"} {
    rest.register_endpoint("echo", [](const std::string& q) {
      return util::Result<std::string>{"echo:" + q};
    });
    rest.register_endpoint("fail", [](const std::string&) {
      return util::Result<std::string>{util::make_error(
          util::ErrorCode::kInvalidArgument, "bad request")};
    });
  }
  sim::Simulator sim;
  net::Network net;
  RestBackend rest;
};

TEST_F(RestTest, InProcessCall) {
  auto r = rest.call("echo", "a=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "echo:a=1");
  EXPECT_FALSE(rest.call("missing", "").ok());
  EXPECT_FALSE(rest.call("fail", "").ok());
  // "missing" never reached a handler; "echo" and "fail" did.
  EXPECT_EQ(rest.requests_served(), 2u);
}

TEST_F(RestTest, EndpointListing) {
  EXPECT_TRUE(rest.has_endpoint("echo"));
  EXPECT_FALSE(rest.has_endpoint("nope"));
  // "echo", "fail", plus the built-in "metrics", "traces" and "flame"
  // endpoints.
  EXPECT_TRUE(rest.has_endpoint("metrics"));
  EXPECT_TRUE(rest.has_endpoint("traces"));
  EXPECT_TRUE(rest.has_endpoint("flame"));
  EXPECT_EQ(rest.endpoints().size(), 5u);
}

// ------------------------------------------------------ trace analytics ----

// One finished job trace to query through the REST trace/analytics surface.
class RestTraceTest : public ::testing::Test {
 protected:
  RestTraceTest() : net{sim, 4}, rest{net, "ctrl.node1"} {
    obs::Tracer& tracer = sim.tracer();
    root = tracer.begin_detached("scheduler", "job");
    tracer.set_attr(root, "job", std::string_view{"job-1"});
    const obs::TraceContext ctx = tracer.context_of(root);
    trace = ctx.trace;
    { obs::ScopedSpan run{&tracer, "scheduler", "run_job", ctx}; }
    tracer.end(root);
  }
  sim::Simulator sim;
  net::Network net;
  RestBackend rest;
  std::uint64_t root = 0;
  std::uint64_t trace = 0;
};

TEST_F(RestTraceTest, TracesAliasesResolveLikeCanonicalParams) {
  const auto canonical_job = rest.call("traces", "job_id=job-1");
  const auto alias_job = rest.call("traces", "job=job-1");
  ASSERT_TRUE(canonical_job.ok());
  ASSERT_TRUE(alias_job.ok());
  EXPECT_EQ(canonical_job.value(), alias_job.value());

  const std::string id = std::to_string(trace);
  const auto canonical_trace = rest.call("traces", "trace_id=" + id);
  const auto alias_trace = rest.call("traces", "trace=" + id);
  ASSERT_TRUE(canonical_trace.ok());
  ASSERT_TRUE(alias_trace.ok());
  EXPECT_EQ(canonical_trace.value(), alias_trace.value());
  EXPECT_EQ(canonical_trace.value(), canonical_job.value());

  // The canonical spelling wins when both are present (first-wins parsing
  // already guards duplicates of the same key).
  const auto both = rest.call("traces", "trace=999&trace_id=" + id);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both.value(), canonical_trace.value());
}

TEST_F(RestTraceTest, MalformedTraceIdsGetTypedErrors) {
  for (const char* query : {"trace_id=abc", "trace=abc", "trace="}) {
    const auto r = rest.call("traces", query);
    ASSERT_FALSE(r.ok()) << query;
    EXPECT_EQ(r.error().code, util::ErrorCode::kInvalidArgument) << query;
    EXPECT_NE(r.error().str().find("must be a decimal integer"),
              std::string::npos)
        << r.error().str();
  }
  // The message names the parameter as the caller spelled it.
  EXPECT_NE(rest.call("traces", "trace=abc").error().str().find("trace "),
            std::string::npos);
  const auto missing = rest.call("traces", "trace_id=424242");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, util::ErrorCode::kNotFound);
}

TEST_F(RestTraceTest, FlameEndpointFoldsTheSpanForest) {
  const auto all = rest.call("flame", "");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().rfind("{\"flame\":", 0), 0u) << all.value();
  EXPECT_NE(all.value().find("\"critical_paths\":["), std::string::npos);
  EXPECT_NE(all.value().find("\"name\":\"run_job\""), std::string::npos);
  EXPECT_NE(all.value().find("\"job\":\"job-1\""), std::string::npos);

  const auto one = rest.call("flame", "trace=" + std::to_string(trace));
  ASSERT_TRUE(one.ok());
  const auto alias = rest.call("flame", "trace_id=" + std::to_string(trace));
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(one.value(), alias.value());

  const auto bad = rest.call("flame", "trace=bogus");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, util::ErrorCode::kInvalidArgument);
  EXPECT_NE(bad.error().str().find("trace must be a decimal integer"),
            std::string::npos);

  const auto missing = rest.call("flame", "trace=999999");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, util::ErrorCode::kNotFound);
  EXPECT_NE(missing.error().str().find("no trace for trace 999999"),
            std::string::npos);
}

TEST_F(RestTest, NetworkAjaxRoundTrip) {
  net.add_link("browser", "ctrl.node1",
               net::LinkSpec::symmetric(Duration::millis(2), 50.0));
  std::string reply;
  net.listen({"browser", 9100},
             [&](const net::Message& m) { reply = m.payload; });
  net::Message call;
  call.src = {"browser", 9100};
  call.dst = rest.address();
  call.tag = "rest.call";
  call.payload = "echo?device_id=J7";
  ASSERT_TRUE(net.send(std::move(call)).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(reply, "200\x1f" "echo:device_id=J7");
}

TEST_F(RestTest, NetworkErrorsGet400) {
  net.add_link("browser", "ctrl.node1",
               net::LinkSpec::symmetric(Duration::millis(2), 50.0));
  std::string reply;
  net.listen({"browser", 9100},
             [&](const net::Message& m) { reply = m.payload; });
  net::Message call;
  call.src = {"browser", 9100};
  call.dst = rest.address();
  call.tag = "rest.call";
  call.payload = "fail?x=1";
  ASSERT_TRUE(net.send(std::move(call)).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(reply.substr(0, 3), "400");
}

TEST(ParseQueryTest, SplitsPairs) {
  const auto q = parse_query("device_id=J7&duration=300&flag");
  EXPECT_EQ(q.at("device_id"), "J7");
  EXPECT_EQ(q.at("duration"), "300");
  EXPECT_EQ(q.at("flag"), "");
  EXPECT_TRUE(parse_query("").empty());
}

TEST(ParseQueryTest, EdgeCaseTable) {
  struct Case {
    const char* query;
    std::map<std::string, std::string> want;
  };
  const Case cases[] = {
      // Percent-decoding, including '+' as space.
      {"k=%41%42+c", {{"k", "AB c"}}},
      {"a%20b=1", {{"a b", "1"}}},
      // Truncated or invalid escapes stay literal rather than eating bytes.
      {"k=%4", {{"k", "%4"}}},
      {"k=%", {{"k", "%"}}},
      {"k=%zz", {{"k", "%zz"}}},
      {"k=100%25", {{"k", "100%"}}},
      // Duplicate keys: first occurrence wins (parameter pollution defense).
      {"dup=1&dup=2&dup=3", {{"dup", "1"}}},
      {"dup=1&dup%32=x", {{"dup", "1"}, {"dup2", "x"}}},
      // Empty keys are dropped; empty values are kept.
      {"=orphan&ok=1", {{"ok", "1"}}},
      {"=&=x&ok=", {{"ok", ""}}},
      {"&&&", {}},
      // Single-pass decode: double-encoded input decodes exactly once.
      {"k=a%2520b", {{"k", "a%20b"}}},
  };
  for (const auto& c : cases) {
    const auto got = parse_query(c.query);
    EXPECT_EQ(got, c.want) << "query: " << c.query;
  }
}

TEST(ParseQueryTest, CapsParameterCount) {
  std::string query;
  for (int i = 0; i < 100; ++i) {
    query += "k" + std::to_string(i) + "=v&";
  }
  EXPECT_EQ(parse_query(query).size(), kMaxQueryParams);
}

TEST(ParseRequestLineTest, AcceptsNameAndQuery) {
  const auto r = parse_request_line("status?verbose=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().name, "status");
  EXPECT_EQ(r.value().query, "verbose=1");

  const auto bare = parse_request_line("list_devices");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value().name, "list_devices");
  EXPECT_EQ(bare.value().query, "");
}

TEST(ParseRequestLineTest, RejectsMalformedLines) {
  const std::string bad[] = {
      "",                                         // empty
      "?x=1",                                     // empty endpoint
      "sta tus",                                  // space in endpoint
      "../etc/passwd?x=1",                        // '/' outside the charset
      "status\r\nX-Injected: 1",                  // control bytes
      std::string(kMaxEndpointBytes + 1, 'a'),    // overlong endpoint
  };
  for (const auto& line : bad) {
    const auto r = parse_request_line(line);
    EXPECT_FALSE(r.ok()) << "line: " << line;
    EXPECT_EQ(r.error().code, util::ErrorCode::kInvalidArgument);
  }
  EXPECT_FALSE(
      parse_request_line(std::string(kMaxRequestBytes + 1, 'a')).ok());
}

}  // namespace
}  // namespace blab::controller
