// Unit tests for the vantage point and the Table-1 BatteryLab API.
#include <gtest/gtest.h>

#include <memory>

#include "api/batterylab_api.hpp"
#include "api/vantage_point.hpp"
#include "device/android.hpp"
#include "device/video_player.hpp"
#include "store/capture_store.hpp"

namespace blab::api {
namespace {

using util::Duration;

class ApiFixture : public ::testing::Test {
 protected:
  ApiFixture() : net{sim, 123} {
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(Duration::millis(4), 900.0));
    vp = std::make_unique<VantagePoint>(sim, net);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(Duration::millis(6), 200.0));
    device::DeviceSpec spec;
    spec.serial = "J7DUO-1";
    auto added = vp->add_device(spec);
    EXPECT_TRUE(added.ok());
    dev = added.value();
    api = std::make_unique<BatteryLabApi>(*vp);
  }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<VantagePoint> vp;
  device::AndroidDevice* dev = nullptr;
  std::unique_ptr<BatteryLabApi> api;
};

// ------------------------------------------------------- vantage point ----

TEST_F(ApiFixture, AddDeviceWiresEverything) {
  EXPECT_TRUE(dev->powered_on());
  EXPECT_EQ(vp->usb_hub().find_port(dev->host()), 0);
  EXPECT_TRUE(vp->access_point().is_associated(dev->host()));
  EXPECT_EQ(vp->relay_channel_of("J7DUO-1").value(), 0);
  EXPECT_EQ(vp->controller().device_count(), 1u);
  EXPECT_GT(dev->usb_charge_ma(), 0.0) << "USB charges the idle device";
  // Duplicate serial rejected.
  device::DeviceSpec dup;
  dup.serial = "J7DUO-1";
  EXPECT_FALSE(vp->add_device(dup).ok());
}

TEST_F(ApiFixture, RelayChannelsExhaust) {
  for (int i = 2; i <= 4; ++i) {
    device::DeviceSpec spec;
    spec.serial = "DEV" + std::to_string(i);
    EXPECT_TRUE(vp->add_device(spec).ok()) << i;
  }
  device::DeviceSpec fifth;
  fifth.serial = "DEV5";
  const auto r = vp->add_device(fifth);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::ErrorCode::kResourceExhausted);
}

TEST_F(ApiFixture, SwitchToBypassWithoutMonitorBrownsOut) {
  const auto st = vp->switch_power("J7DUO-1", hw::RelayPosition::kBypass);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(dev->powered_on()) << "no supply on the bypass rail";
  // Recovery: back to battery and reboot.
  ASSERT_TRUE(vp->switch_power("J7DUO-1", hw::RelayPosition::kBattery).ok());
  dev->power_on();
  EXPECT_TRUE(dev->powered_on());
}

// ------------------------------------------------------------- table 1 ----

TEST_F(ApiFixture, ListDevices) {
  EXPECT_EQ(api->list_devices(), std::vector<std::string>{"J7DUO-1"});
}

TEST_F(ApiFixture, PowerMonitorToggles) {
  EXPECT_FALSE(api->monitor_powered());
  ASSERT_TRUE(api->power_monitor().ok());
  EXPECT_TRUE(api->monitor_powered());
  ASSERT_TRUE(api->power_monitor().ok());
  EXPECT_FALSE(api->monitor_powered());
}

TEST_F(ApiFixture, SetVoltageNeedsPower) {
  EXPECT_FALSE(api->set_voltage(3.85).ok());
  ASSERT_TRUE(api->power_monitor().ok());
  EXPECT_TRUE(api->set_voltage(3.85).ok());
  EXPECT_FALSE(api->set_voltage(99.0).ok());
}

TEST_F(ApiFixture, StartStopMonitorLifecycle) {
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  ASSERT_TRUE(api->start_monitor("J7DUO-1").ok());
  EXPECT_TRUE(api->monitoring());
  // USB was cut for hygiene.
  EXPECT_EQ(vp->usb_hub().charge_current_ma(dev->host()), 0.0);
  EXPECT_EQ(dev->power_source(), device::PowerSource::kMonitorBypass);
  // One at a time.
  EXPECT_FALSE(api->start_monitor("J7DUO-1").ok());

  sim.run_for(Duration::seconds(10));
  auto capture = api->stop_monitor();
  ASSERT_TRUE(capture.ok());
  EXPECT_NEAR(capture.value().duration().to_seconds(), 10.0, 0.1);
  EXPECT_GT(capture.value().mean_current_ma(), 50.0);
  // Everything restored.
  EXPECT_FALSE(api->monitoring());
  EXPECT_GT(vp->usb_hub().charge_current_ma(dev->host()), 0.0);
  EXPECT_EQ(dev->power_source(), device::PowerSource::kBattery);
  EXPECT_FALSE(api->stop_monitor().ok()) << "nothing to stop";
}

TEST_F(ApiFixture, StartMonitorUnknownDevice) {
  EXPECT_FALSE(api->start_monitor("GHOST").ok());
}

TEST_F(ApiFixture, StartMonitorWithoutMonitorPowerRestoresState) {
  const auto st = api->start_monitor("J7DUO-1");
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(api->monitoring());
  // Device must be back on battery + USB restored after the failed attempt.
  EXPECT_GT(vp->usb_hub().charge_current_ma(dev->host()), 0.0);
}

TEST_F(ApiFixture, AutoStopAfterDuration) {
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  ASSERT_TRUE(api->start_monitor("J7DUO-1", Duration::seconds(5)).ok());
  sim.run_for(Duration::seconds(6));
  EXPECT_FALSE(api->monitoring()) << "auto-stop fired";
  EXPECT_FALSE(vp->monitor().capturing());
}

TEST_F(ApiFixture, RunMonitorMeasuresVideoPlayback) {
  auto player = std::make_unique<device::VideoPlayerApp>(*dev);
  device::VideoPlayerApp* p = player.get();
  ASSERT_TRUE(dev->os().install(std::move(player)).ok());
  ASSERT_TRUE(dev->os().start_activity(p->package()).ok());
  ASSERT_TRUE(p->play("/sdcard/video.mp4").ok());
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  auto capture = api->run_monitor("J7DUO-1", Duration::seconds(30));
  ASSERT_TRUE(capture.ok());
  // Fig. 2 anchor: local video playback draws ~160 mA median.
  EXPECT_NEAR(capture.value().current_cdf(25).median(), 165.0, 20.0);
}

TEST_F(ApiFixture, BattSwitchTogglesRelay) {
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  ASSERT_TRUE(api->batt_switch("J7DUO-1").ok());
  sim.run_for(Duration::millis(50));
  EXPECT_EQ(vp->relay().position(0).value(), hw::RelayPosition::kBypass);
  ASSERT_TRUE(api->batt_switch("J7DUO-1").ok());
  sim.run_for(Duration::millis(50));
  EXPECT_EQ(vp->relay().position(0).value(), hw::RelayPosition::kBattery);
}

TEST_F(ApiFixture, ExecuteAdbPrefersUsbThenWifi) {
  auto out = api->execute_adb("J7DUO-1", "whoami");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "shell");
  // During a measurement USB is off; the API must fall back to WiFi.
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  ASSERT_TRUE(api->start_monitor("J7DUO-1").ok());
  auto during = api->execute_adb("J7DUO-1", "dumpsys battery");
  ASSERT_TRUE(during.ok());
  EXPECT_NE(during.value().find("bypass"), std::string::npos)
      << "dumpsys sees the bypass power source";
  (void)api->stop_monitor();
}

TEST_F(ApiFixture, DeviceMirroringApi) {
  EXPECT_FALSE(api->mirroring_active("J7DUO-1"));
  ASSERT_TRUE(api->device_mirroring("J7DUO-1").ok());
  EXPECT_TRUE(api->mirroring_active("J7DUO-1"));
  EXPECT_FALSE(api->device_mirroring("J7DUO-1", true).ok())
      << "already mirroring";
  ASSERT_TRUE(api->device_mirroring("J7DUO-1", false).ok());
  EXPECT_FALSE(api->mirroring_active("J7DUO-1"));
  EXPECT_FALSE(api->device_mirroring("GHOST").ok());
}

TEST_F(ApiFixture, MeasurementSeesMirroringOverhead) {
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  auto plain = api->run_monitor("J7DUO-1", Duration::seconds(10));
  ASSERT_TRUE(plain.ok());

  ASSERT_TRUE(api->device_mirroring("J7DUO-1").ok());
  auto mirrored = api->run_monitor("J7DUO-1", Duration::seconds(10));
  ASSERT_TRUE(mirrored.ok());
  ASSERT_TRUE(api->device_mirroring("J7DUO-1", false).ok());

  EXPECT_GT(mirrored.value().mean_current_ma(),
            plain.value().mean_current_ma() + 20.0)
      << "scrcpy + encoder + radio cost must be visible";
}

// ---------------------------------------------------------------- rest ----

TEST_F(ApiFixture, RestEndpointsMirrorTableOne) {
  api->bind_rest_endpoints();
  auto& rest = vp->rest();
  for (const char* endpoint :
       {"list_devices", "device_mirroring", "power_monitor", "set_voltage",
        "start_monitor", "stop_monitor", "batt_switch", "execute_adb"}) {
    EXPECT_TRUE(rest.has_endpoint(endpoint)) << endpoint;
  }

  auto devices = rest.call("list_devices", "");
  ASSERT_TRUE(devices.ok());
  EXPECT_EQ(devices.value(), "J7DUO-1");

  EXPECT_TRUE(rest.call("power_monitor", "").ok());
  EXPECT_TRUE(rest.call("set_voltage", "voltage_val=3.85").ok());
  EXPECT_FALSE(rest.call("set_voltage", "").ok()) << "missing parameter";
  EXPECT_TRUE(rest.call("start_monitor", "device_id=J7DUO-1").ok());
  sim.run_for(Duration::seconds(2));
  auto stopped = rest.call("stop_monitor", "");
  ASSERT_TRUE(stopped.ok());
  EXPECT_NE(stopped.value().find("samples="), std::string::npos);
  EXPECT_NE(stopped.value().find("mean_ma="), std::string::npos);

  auto adb = rest.call("execute_adb", "device_id=J7DUO-1&command=whoami");
  ASSERT_TRUE(adb.ok());
  EXPECT_EQ(adb.value(), "shell");
  EXPECT_FALSE(rest.call("execute_adb", "device_id=J7DUO-1").ok());
}

TEST_F(ApiFixture, RestMonitorWithDuration) {
  api->bind_rest_endpoints();
  ASSERT_TRUE(vp->rest().call("power_monitor", "").ok());
  ASSERT_TRUE(vp->rest().call("set_voltage", "voltage_val=3.85").ok());
  ASSERT_TRUE(
      vp->rest().call("start_monitor", "device_id=J7DUO-1&duration=3").ok());
  sim.run_for(Duration::seconds(4));
  EXPECT_FALSE(api->monitoring()) << "duration parameter auto-stops";
}

TEST_F(ApiFixture, RestCapturesSourceEndpoint) {
  api->bind_rest_endpoints();
  auto& rest = vp->rest();
  ASSERT_TRUE(rest.has_endpoint("captures_source"));

  // No store attached yet: the endpoint must refuse, not crash.
  auto unattached = rest.call("captures_source", "");
  ASSERT_FALSE(unattached.ok());
  EXPECT_EQ(unattached.error().code, util::ErrorCode::kFailedPrecondition);

  store::CaptureStore captures;
  api->attach_capture_store(&captures, "lab");

  // Attached but nothing archived: no default id to fall back on.
  EXPECT_FALSE(rest.call("captures_source", "").ok());

  ASSERT_TRUE(rest.call("power_monitor", "").ok());
  ASSERT_TRUE(rest.call("set_voltage", "voltage_val=3.85").ok());
  ASSERT_TRUE(rest.call("start_monitor", "device_id=J7DUO-1").ok());
  sim.run_for(Duration::seconds(2));
  ASSERT_TRUE(rest.call("stop_monitor", "").ok());
  ASSERT_EQ(captures.size(), 1u) << "stop_monitor archives through the store";

  // Default id: the most recently archived capture.
  auto latest = rest.call("captures_source", "");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value(), "id=lab#1&source=memory");

  // Explicit id, '#' percent-encoded as %23 in the query string.
  auto explicit_id = rest.call("captures_source", "id=lab%231");
  ASSERT_TRUE(explicit_id.ok());
  EXPECT_EQ(explicit_id.value(), latest.value());

  // Malformed and unknown ids fail with distinct codes.
  auto malformed = rest.call("captures_source", "id=lab-1");
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.error().code, util::ErrorCode::kInvalidArgument);
  auto unknown = rest.call("captures_source", "id=lab%2399");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, util::ErrorCode::kNotFound);

  // Once retention reduces the record to downsample tiers, the endpoint
  // reports it.
  ASSERT_EQ(captures.drop_workspace_raw("lab"), 1u);
  auto tiered = rest.call("captures_source", "");
  ASSERT_TRUE(tiered.ok());
  EXPECT_EQ(tiered.value(), "id=lab#1&source=tier");
}

}  // namespace
}  // namespace blab::api
