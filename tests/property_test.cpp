// Cross-module property tests: invariants that must hold under randomized
// workloads, seeds and topologies — the glue-level correctness the per-module
// suites cannot see.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/batterylab_api.hpp"
#include "device/android.hpp"
#include "device/browser.hpp"
#include "hw/relay.hpp"
#include "mirror/ws_frame.hpp"
#include "server/access_server.hpp"
#include "store/codec.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace blab {
namespace {

using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------------------
// Property 1: the Monsoon's sampled capture agrees with the analytic
// integral of the device's supply timeline — sampling introduces noise but
// no bias, for arbitrary stochastic workloads.
// ---------------------------------------------------------------------------

class CaptureEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CaptureEquivalence, SampledMeanMatchesTimelineIntegral) {
  sim::Simulator sim;
  net::Network net{sim, GetParam()};
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(Duration::millis(4), 900.0));
  api::VantagePointConfig config;
  config.seed = GetParam();
  api::VantagePoint vp{sim, net, config};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(Duration::millis(6), 200.0));
  device::DeviceSpec spec;
  spec.serial = "P1";
  auto* dev = vp.add_device(spec).value();
  api::BatteryLabApi api{vp};
  ASSERT_TRUE(api.power_monitor().ok());
  ASSERT_TRUE(api.set_voltage(3.85).ok());

  // A random process zoo makes the supply timeline jagged.
  util::Rng rng{GetParam() ^ 0xABCDEF};
  for (int i = 0; i < 5; ++i) {
    dev->processes().spawn("p" + std::to_string(i), rng.uniform(0.01, 0.15),
                           rng.uniform(0.0, 0.5));
  }
  dev->recompute_power();

  ASSERT_TRUE(api.start_monitor("P1").ok());
  const TimePoint t0 = sim.now();
  sim.run_for(Duration::seconds(20));
  const TimePoint t1 = sim.now();
  auto capture = api.stop_monitor();
  ASSERT_TRUE(capture.ok());

  const double timeline_mean = dev->supply_timeline().mean(t0, t1);
  const double gain = vp.monitor().spec().gain;
  const double loss = vp.relay().spec().contact_loss_fraction;
  EXPECT_NEAR(capture.value().mean_current_ma(),
              timeline_mean * gain * (1.0 + loss),
              timeline_mean * 0.01 + 0.3)
      << "sampling must be unbiased relative to the analytic timeline";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaptureEquivalence,
                         ::testing::Values(1, 17, 291, 4242, 99991));

// ---------------------------------------------------------------------------
// Property 2: the relay board's output equals the sum of bypass-side device
// draws (x contact loss), for arbitrary switch patterns — channels never
// leak into each other.
// ---------------------------------------------------------------------------

class RelayIsolation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelayIsolation, BoardCurrentIsExactlyTheBypassSum) {
  sim::Simulator sim;
  net::Network net{sim, GetParam()};
  api::VantagePointConfig config;
  config.seed = GetParam();
  config.relay_channels = 4;
  api::VantagePoint vp{sim, net, config};
  std::vector<device::AndroidDevice*> devices;
  for (int i = 0; i < 4; ++i) {
    device::DeviceSpec spec;
    spec.serial = "D" + std::to_string(i);
    auto added = vp.add_device(spec);
    ASSERT_TRUE(added.ok());
    devices.push_back(added.value());
  }
  // Power the monitor so bypass switches do not brown devices out.
  ASSERT_TRUE(vp.power_socket().turn_on().ok());
  ASSERT_TRUE(vp.monitor().set_voltage(3.85).ok());

  util::Rng rng{GetParam()};
  for (int round = 0; round < 8; ++round) {
    // Random switch pattern.
    std::vector<bool> bypass(4);
    for (int i = 0; i < 4; ++i) {
      bypass[static_cast<std::size_t>(i)] = rng.chance(0.5);
      ASSERT_TRUE(vp.switch_power("D" + std::to_string(i),
                                  bypass[static_cast<std::size_t>(i)]
                                      ? hw::RelayPosition::kBypass
                                      : hw::RelayPosition::kBattery)
                      .ok());
    }
    // Let contacts settle and transients decay.
    sim.run_for(Duration::millis(50));
    const double loss = vp.relay().spec().contact_loss_fraction;
    double expected = 0.0;
    for (int i = 0; i < 4; ++i) {
      if (bypass[static_cast<std::size_t>(i)]) {
        expected +=
            devices[static_cast<std::size_t>(i)]->current_ma(sim.now()) *
            (1.0 + loss);
      }
    }
    EXPECT_NEAR(vp.relay().current_ma(sim.now()), expected, 1e-6)
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelayIsolation,
                         ::testing::Values(3, 77, 1312, 90210));

// ---------------------------------------------------------------------------
// Property 3: scheduler safety under randomized job mixes — every submitted,
// approved, satisfiable job eventually runs exactly once; no device is ever
// double-booked; queued jobs stay queued.
// ---------------------------------------------------------------------------

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, EveryRunnableJobRunsExactlyOnce) {
  sim::Simulator sim;
  net::Network net{sim, GetParam()};
  net.add_host("internet");
  server::AccessServer server{sim, net};
  api::VantagePointConfig config;
  config.seed = GetParam();
  api::VantagePoint vp{sim, net, config};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(Duration::millis(6), 200.0));
  for (const char* serial : {"A", "B", "C"}) {
    device::DeviceSpec spec;
    spec.serial = serial;
    ASSERT_TRUE(vp.add_device(spec).ok());
  }
  ASSERT_TRUE(server.onboard_vantage_point("node1", vp).ok());
  const auto admin =
      server.users().register_user("root", server::Role::kAdmin);
  const auto alice =
      server.users().register_user("alice", server::Role::kExperimenter);

  util::Rng rng{GetParam()};
  std::unordered_map<std::string, int> run_counts;
  int expected_runs = 0;
  int expected_queued = 0;
  std::vector<server::JobId> ids;
  for (int i = 0; i < 25; ++i) {
    server::Job job;
    job.name = "fuzz-" + std::to_string(i);
    const int dice = static_cast<int>(rng.uniform_int(0, 3));
    if (dice == 0) job.constraints.device_serial = "A";
    if (dice == 1) job.constraints.device_serial = "GHOST";  // unsatisfiable
    if (dice == 2) job.constraints.device_model = "Samsung J7 Duo";
    const bool satisfiable = dice != 1;
    const std::string name = job.name;
    job.script = [&run_counts, &server, name](server::JobContext& ctx) {
      ++run_counts[name];
      // One job at a time per device (§3.1): our own device must be busy,
      // and at most 1 job (this one) may hold it.
      EXPECT_TRUE(server.scheduler().device_busy(ctx.device_serial));
      return util::Status::ok_status();
    };
    auto id = server.submit_job(alice.value(), std::move(job));
    ASSERT_TRUE(id.ok());
    const bool approved = rng.chance(0.8);
    if (approved) {
      ASSERT_TRUE(server.approve_pipeline(admin.value(), id.value()).ok());
    }
    if (approved && satisfiable) {
      ++expected_runs;
    } else {
      ++expected_queued;
    }
    ids.push_back(id.value());
  }
  auto ran = server.run_queue(alice.value());
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(ran.value(), static_cast<std::size_t>(expected_runs));
  // Re-running the queue must not re-run anything.
  EXPECT_EQ(server.run_queue(alice.value()).value(), 0u);
  for (const auto& [name, count] : run_counts) {
    EXPECT_EQ(count, 1) << name << " ran more than once";
  }
  int queued = 0;
  for (const auto id : ids) {
    if (server.scheduler().find(id)->state == server::JobState::kQueued) {
      ++queued;
    }
  }
  EXPECT_EQ(queued, expected_queued);
  for (const char* serial : {"A", "B", "C"}) {
    EXPECT_FALSE(server.scheduler().device_busy(serial));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(11, 222, 3333, 44444));

// ---------------------------------------------------------------------------
// Property 4: energy conservation — the battery's charge loss over an
// unmeasured interval equals the integral of the supply timeline.
// ---------------------------------------------------------------------------

class BatteryConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatteryConservation, DischargeEqualsTimelineIntegral) {
  sim::Simulator sim;
  net::Network net{sim, GetParam()};
  device::DeviceSpec spec;
  spec.serial = "B1";
  device::AndroidDevice dev{sim, net, "dev.B1", spec, GetParam()};
  dev.power_on();
  util::Rng rng{GetParam() ^ 0x5555};
  for (int i = 0; i < 3; ++i) {
    dev.processes().spawn("w" + std::to_string(i), rng.uniform(0.02, 0.2),
                          rng.uniform(0.0, 0.4));
  }
  dev.recompute_power();
  const TimePoint t0 = sim.now();
  const double mah0 = dev.battery().remaining_mah();
  sim.run_for(Duration::minutes(rng.uniform(2.0, 15.0)));
  dev.recompute_power();  // flush the integration
  const TimePoint t1 = sim.now();
  const double drained = mah0 - dev.battery().remaining_mah();
  const double integral_mah =
      dev.supply_timeline().integral(t0, t1) / 3600.0;
  EXPECT_NEAR(drained, integral_mah, integral_mah * 0.01 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatteryConservation,
                         ::testing::Values(5, 50, 500, 5000));

// ---------------------------------------------------------------------------
// Property 5: measurement determinism — identical seeds give bit-identical
// captures across completely reconstructed deployments, regardless of the
// workload mix.
// ---------------------------------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, CapturesAreBitIdentical) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    net::Network net{sim, seed};
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(Duration::millis(4), 900.0));
    api::VantagePointConfig config;
    config.seed = seed;
    api::VantagePoint vp{sim, net, config};
    net.add_link(vp.controller_host(), "internet",
                 net::LinkSpec::symmetric(Duration::millis(6), 200.0));
    device::DeviceSpec spec;
    spec.serial = "D1";
    auto* dev = vp.add_device(spec).value();
    auto browser = std::make_unique<device::Browser>(
        *dev, device::BrowserProfile::chrome());
    auto* b = browser.get();
    (void)dev->os().install(std::move(browser));
    (void)dev->os().start_activity(b->package());
    b->on_tap(0, 0);
    b->on_tap(0, 0);
    (void)b->navigate("news-a.example");
    api::BatteryLabApi api{vp};
    (void)api.power_monitor();
    (void)api.set_voltage(3.85);
    auto capture = api.run_monitor("D1", Duration::seconds(8));
    return capture.value().samples_ma();
  };
  const auto a = run(GetParam());
  const auto b = run(GetParam());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b) << "same seed must give the same samples, bit for bit";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(7, 1984, 20191113));

// ---------------------------------------------------------------------------
// Property 6: the wire codecs are adversarially total. For any random byte
// string, decoding never crashes, and every accepted input re-encodes to the
// exact bytes that were decoded (canonical encodings). For any random value,
// encode -> decode is the identity.
// ---------------------------------------------------------------------------

class WireCodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireCodecFuzz, SampleCodecRoundTripsAndRejectsCanonically) {
  util::Rng rng{GetParam()};
  for (int iter = 0; iter < 200; ++iter) {
    // Random values: encode -> decode is the identity, bit for bit.
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<float> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      samples.push_back(static_cast<float>(rng.uniform(-1e4, 1e4)));
    }
    const std::string bytes =
        store::encode_samples(samples.data(), samples.size());
    std::vector<float> decoded;
    ASSERT_TRUE(store::decode_samples(bytes, n, decoded));
    EXPECT_EQ(decoded, samples);
    EXPECT_EQ(store::encode_samples(decoded.data(), decoded.size()), bytes);

    // Random bytes: decode either fails or re-encodes byte-identically.
    std::string junk;
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 48));
    for (std::size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.uniform_int(0, 255)));
    }
    const std::size_t claim = static_cast<std::size_t>(rng.uniform_int(0, 16));
    decoded.clear();
    if (store::decode_samples(junk, claim, decoded)) {
      EXPECT_EQ(decoded.size(), claim);
      EXPECT_EQ(store::encode_samples(decoded.data(), decoded.size()), junk);
    }
  }
}

TEST_P(WireCodecFuzz, WsFramesRoundTripAndRejectCanonically) {
  util::Rng rng{GetParam() ^ 0x5733A};
  for (int iter = 0; iter < 200; ++iter) {
    // Random legal frames: encode -> decode is the identity.
    mirror::WsFrame frame;
    static constexpr mirror::WsOpcode kOps[] = {
        mirror::WsOpcode::kContinuation, mirror::WsOpcode::kText,
        mirror::WsOpcode::kBinary,       mirror::WsOpcode::kClose,
        mirror::WsOpcode::kPing,         mirror::WsOpcode::kPong};
    frame.opcode = kOps[rng.uniform_int(0, 5)];
    const bool control = mirror::is_control_opcode(frame.opcode);
    frame.fin = control || rng.uniform_int(0, 1) == 1;
    frame.masked = rng.uniform_int(0, 1) == 1;
    for (auto& b : frame.mask_key) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const std::size_t max_len = control ? 125 : 300;
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(max_len)));
    for (std::size_t i = 0; i < len; ++i) {
      // ASCII keeps text frames valid UTF-8; binary frames take any byte.
      const int hi = frame.opcode == mirror::WsOpcode::kText ? 126 : 255;
      frame.payload.push_back(static_cast<char>(rng.uniform_int(1, hi)));
    }
    const std::string wire = mirror::encode_ws_frame(frame);
    std::size_t consumed = 0;
    const auto back = mirror::decode_ws_frame(wire, &consumed);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(back.value().payload, frame.payload);
    EXPECT_EQ(back.value().opcode, frame.opcode);

    // Random bytes: decode either fails or re-encodes the consumed prefix.
    std::string junk;
    const std::size_t jlen = static_cast<std::size_t>(rng.uniform_int(0, 64));
    for (std::size_t i = 0; i < jlen; ++i) {
      junk.push_back(static_cast<char>(rng.uniform_int(0, 255)));
    }
    consumed = 0;
    const auto parsed = mirror::decode_ws_frame(junk, &consumed);
    if (parsed.ok()) {
      EXPECT_EQ(mirror::encode_ws_frame(parsed.value()),
                junk.substr(0, consumed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireCodecFuzz,
                         ::testing::Values(3, 555, 90210));

// ---------------------------------------------------------------------------
// Property: scalar/batch draw equivalence. fill_normal over n values must
// produce bit-identical output AND final generator state to n scalar
// normal() calls, for any split of n into consecutive fills. The DST golden
// digests used to be the only guard on this invariant; after the ziggurat
// re-pin it is guarded directly, so a future batching "optimisation" that
// perturbs the u64 consumption sequence fails here instead of surfacing as
// an inexplicable digest drift.
// ---------------------------------------------------------------------------

class RngBatchEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBatchEquivalence, FillNormalSplitsMatchScalarStream) {
  util::Rng fuzz{GetParam() ^ 0x2166BA7CULL};
  for (int iter = 0; iter < 100; ++iter) {
    const auto n = static_cast<std::size_t>(fuzz.uniform_int(0, 400));
    const auto split = static_cast<std::size_t>(
        fuzz.uniform_int(0, static_cast<std::int64_t>(n)));
    const std::uint64_t seed = fuzz.next_u64();
    const double mean = fuzz.uniform(-5.0, 5.0);
    const double stddev = fuzz.uniform(0.01, 4.0);

    util::Rng scalar{seed};
    std::vector<double> want(n);
    for (auto& v : want) v = scalar.normal(mean, stddev);

    util::Rng batched{seed};
    std::vector<double> got(n);
    const std::span<double> out{got};
    batched.fill_normal(out.subspan(0, split), mean, stddev);
    batched.fill_normal(out.subspan(split), mean, stddev);

    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(want[i], got[i])
          << "n=" << n << " split=" << split << " sample " << i
          << " diverged from the scalar stream";
    }
    // Final generator state must agree exactly, so future draws of any kind
    // continue the same stream. Four u64s pin all 256 bits of xoshiro state.
    for (int k = 0; k < 4; ++k) {
      ASSERT_EQ(scalar.next_u64(), batched.next_u64())
          << "n=" << n << " split=" << split
          << ": generator state diverged after the fill";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBatchEquivalence,
                         ::testing::Values(11, 4242, 777777));

}  // namespace
}  // namespace blab
