// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/periodic.hpp"
#include "sim/simulator.hpp"
#include "util/logging.hpp"

namespace blab::sim {
namespace {

using util::Duration;
using util::TimePoint;

TEST(SimulatorTest, StartsAtEpoch) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::epoch());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(30), [&] { order.push_back(3); });
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::millis(30));
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const auto t = Duration::millis(5);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(t, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_after(Duration::seconds(2), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, TimePoint::epoch() + Duration::seconds(2));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::millis(10), [&] { ++fired; });
  sim.schedule_after(Duration::millis(50), [&] { ++fired; });
  const auto n = sim.run_until(TimePoint::epoch() + Duration::millis(20));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::millis(20));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.run_for(Duration::seconds(1));
  sim.run_for(Duration::seconds(2));
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::seconds(3));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(Duration::millis(5), [&] {
    fired = true;
  });
  EXPECT_TRUE(sim.is_pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.is_pending(id));
  EXPECT_FALSE(sim.cancel(id)) << "double cancel must fail";
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelOfFiredEventFails) {
  Simulator sim;
  const EventId id = sim.schedule_after(Duration::millis(1), [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.is_pending(id));
}

TEST(SimulatorTest, EventsScheduledFromCallbacksRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.schedule_after(Duration::millis(1), recurse);
    }
  };
  sim.schedule_after(Duration::millis(1), recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::millis(5));
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.run_for(Duration::seconds(5));
  bool fired = false;
  sim.schedule_at(TimePoint::epoch() + Duration::seconds(1), [&] {
    fired = true;
  });
  sim.step();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::seconds(5));
}

TEST(SimulatorTest, RunAllReportsTrippedCap) {
  Simulator sim;
  std::function<void()> forever = [&] {
    sim.schedule_after(Duration::millis(1), forever);
  };
  sim.schedule_after(Duration::millis(1), forever);
  EXPECT_EQ(sim.run_all(1000), 1000u);
  EXPECT_TRUE(sim.hit_cap()) << "runaway task must be distinguishable";
  EXPECT_EQ(sim.pending_events(), 1u) << "the rescheduled event is pending";
}

TEST(SimulatorTest, RunAllDrainedQueueClearsHitCap) {
  Simulator sim;
  std::function<void()> forever = [&] {
    sim.schedule_after(Duration::millis(1), forever);
  };
  sim.schedule_after(Duration::millis(1), forever);
  EXPECT_EQ(sim.run_all(10), 10u);
  ASSERT_TRUE(sim.hit_cap());
  // Drop the runaway chain: the next drain empties cleanly.
  for (int i = 0; i < 3; ++i) sim.schedule_after(Duration::millis(1), [] {});
  sim.run_until(sim.now());  // no-op; the chain event is still pending
  forever = [] {};           // break the self-rescheduling cycle
  sim.run_all(100);
  EXPECT_FALSE(sim.hit_cap()) << "a drained queue must not report a cap trip";
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, PeriodicTaskTripsRunAllCap) {
  // Regression: a self-rescheduling periodic task never drains; callers of
  // run_all must see hit_cap() rather than mistaking the cap for a drain.
  Simulator sim;
  PeriodicTask poller{sim, Duration::millis(10), [] {}};
  poller.start();
  EXPECT_EQ(sim.run_all(500), 500u);
  EXPECT_TRUE(sim.hit_cap());
  poller.stop();
  sim.run_all();
  EXPECT_FALSE(sim.hit_cap()) << "stopped task drains; cap flag resets";
}

TEST(SimulatorTest, TraceHookSeesEveryExecutedEvent) {
  Simulator sim;
  std::vector<std::string> labels;
  sim.set_trace_hook([&](TimePoint, std::uint64_t, const std::string& label) {
    labels.push_back(label);
  });
  sim.schedule_after(Duration::millis(2), [] {}, "second");
  sim.schedule_after(Duration::millis(1), [] {}, "first");
  sim.schedule_after(Duration::millis(3), [] {}, "third");
  sim.run_for(Duration::millis(2));  // run_until path
  sim.run_all();                     // step path
  EXPECT_EQ(labels,
            (std::vector<std::string>{"first", "second", "third"}));
  sim.set_trace_hook(nullptr);
  EXPECT_FALSE(sim.has_trace_hook());
}

TEST(SimulatorTest, ExecutedEventCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(Duration::millis(i), [] {});
  sim.run_all();
  EXPECT_EQ(sim.executed_events(), 7u);
}

// ------------------------------------------- arena / lazy-deletion edges ----

TEST(SimulatorTest, CancelFromInsideOwnCallbackIsNoOp) {
  // By the time a callback runs its handle is already invalid, so
  // self-cancellation must fail cleanly rather than corrupt the slot the
  // callback is still executing from.
  Simulator sim;
  EventId self = kInvalidEvent;
  bool cancel_result = true;
  self = sim.schedule_after(Duration::millis(1), [&] {
    cancel_result = sim.cancel(self);
  });
  sim.run_all();
  EXPECT_FALSE(cancel_result);
  EXPECT_FALSE(sim.is_pending(self));
}

TEST(SimulatorTest, RescheduleInsideCallbackDoesNotReuseFiringSlot) {
  // The firing slot stays off the free list until its callback returns, so a
  // reentrant schedule must land in a different slot: the new event's captures
  // cannot overwrite the closure that is still running.
  Simulator sim;
  std::vector<int> order;
  EventId inner = kInvalidEvent;
  const EventId outer = sim.schedule_after(Duration::millis(1), [&] {
    inner = sim.schedule_after(Duration::millis(1), [&] {
      order.push_back(2);
    });
    order.push_back(1);
  });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_NE(SimulatorTestAccess::slot_index(inner),
            SimulatorTestAccess::slot_index(outer))
      << "reentrant schedule reused the slot whose callback was running";
}

TEST(SimulatorTest, CancelledSlotIsRecycledWithFreshTag) {
  Simulator sim;
  const EventId first = sim.schedule_after(Duration::millis(5), [] {});
  ASSERT_TRUE(sim.cancel(first));
  // The freed slot is recycled immediately; the stale handle must not see
  // the new occupant.
  bool fired = false;
  const EventId second = sim.schedule_after(Duration::millis(5), [&] {
    fired = true;
  });
  ASSERT_EQ(SimulatorTestAccess::slot_index(second),
            SimulatorTestAccess::slot_index(first))
      << "free list should hand back the cancelled slot";
  EXPECT_NE(first, second);
  EXPECT_FALSE(sim.is_pending(first));
  EXPECT_FALSE(sim.cancel(first)) << "stale handle must not cancel the reuser";
  EXPECT_TRUE(sim.is_pending(second));
  sim.run_all();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, TagWraparoundKeepsRecycledHandlesDistinct) {
  // Jump the global sequence counter to the edge of the 32-bit tag space:
  // occupancy tags wrap 0xFFFFFFFF -> 0 across the boundary, and handles for
  // successive occupancies of the same slot must stay distinct and correct.
  Simulator sim;
  SimulatorTestAccess::set_next_seq(sim, 0xFFFFFFFFull);
  const EventId before = sim.schedule_after(Duration::millis(1), [] {});
  EXPECT_EQ(SimulatorTestAccess::tag(before), 0xFFFFFFFFu);
  ASSERT_TRUE(sim.cancel(before));
  // Reuses the slot with the wrapped tag 0.
  bool fired = false;
  const EventId after = sim.schedule_after(Duration::millis(1), [&] {
    fired = true;
  });
  EXPECT_EQ(SimulatorTestAccess::tag(after), 0u);
  ASSERT_EQ(SimulatorTestAccess::slot_index(after),
            SimulatorTestAccess::slot_index(before));
  EXPECT_NE(before, after);
  EXPECT_FALSE(sim.is_pending(before));
  EXPECT_FALSE(sim.cancel(before));
  EXPECT_TRUE(sim.is_pending(after));
  sim.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.executed_events(), 1u) << "cancelled event must not fire";
}

TEST(SimulatorTest, ManyCancelledEventsAreSkippedLazily) {
  // Interleave live and cancelled events so fire-time settling has to drop
  // stale heap entries between real ones.
  Simulator sim;
  std::vector<int> fired;
  std::vector<EventId> doomed;
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      sim.schedule_after(Duration::millis(i), [&fired, i] {
        fired.push_back(i);
      });
    } else {
      doomed.push_back(sim.schedule_after(Duration::millis(i), [] {
        FAIL() << "cancelled event fired";
      }));
    }
  }
  for (EventId id : doomed) EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 50u);
  sim.run_all();
  ASSERT_EQ(fired.size(), 50u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(sim.executed_events(), 50u);
}

TEST(SimulatorTest, PastClampLogsAtDebugOncePerLabel) {
  util::LogCapture capture;  // raises the level to debug
  Simulator sim;
  sim.run_for(Duration::seconds(2));
  const TimePoint past = TimePoint::epoch() + Duration::seconds(1);
  sim.schedule_at(past, [] {}, "replayed-fault");
  sim.schedule_at(past, [] {}, "replayed-fault");  // same label: no new line
  sim.schedule_at(past, [] {}, "other-site");
  const auto clamp_lines = [&] {
    const auto lines = capture.lines();  // lines() returns a copy
    return std::count_if(lines.begin(), lines.end(),
                         [](const std::string& line) {
                           return line.find("clamped") != std::string::npos;
                         });
  };
  EXPECT_EQ(clamp_lines(), 2) << "one debug line per distinct label";
  EXPECT_TRUE(capture.contains("replayed-fault"));
  EXPECT_TRUE(capture.contains("other-site"));
  sim.run_all();
  EXPECT_EQ(sim.executed_events(), 3u) << "clamped events still fire";
}

// ------------------------------------------------------------ periodic ----

TEST(PeriodicTaskTest, TicksAtPeriod) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task{sim, Duration::millis(100), [&] { ++ticks; }};
  task.start();
  sim.run_for(Duration::millis(1000));
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(task.ticks(), 10u);
}

TEST(PeriodicTaskTest, StartAfterInitialDelay) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task{sim, Duration::millis(100), [&] { ++ticks; }};
  task.start_after(Duration::millis(500));
  sim.run_for(Duration::millis(450));
  EXPECT_EQ(ticks, 0);
  sim.run_for(Duration::millis(100));
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTaskTest, StopHalts) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task{sim, Duration::millis(10), [&] { ++ticks; }};
  task.start();
  sim.run_for(Duration::millis(35));
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_for(Duration::millis(100));
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTaskTest, SelfStopInsideTickDoesNotRearm) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task{sim, Duration::millis(10), [&] {
    if (++ticks == 3) handle->stop();
  }};
  handle = &task;
  task.start();
  sim.run_for(Duration::millis(200));
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, RestartAfterStop) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task{sim, Duration::millis(10), [&] { ++ticks; }};
  task.start();
  sim.run_for(Duration::millis(25));
  task.stop();
  task.start();
  sim.run_for(Duration::millis(25));
  EXPECT_EQ(ticks, 4);
}

TEST(PeriodicTaskTest, DestructionCancelsCleanly) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task{sim, Duration::millis(10), [&] { ++ticks; }};
    task.start();
    sim.run_for(Duration::millis(15));
  }
  sim.run_for(Duration::millis(100));  // must not crash on dangling events
  EXPECT_EQ(ticks, 1);
}

// Property: N periodic tasks with co-prime periods fire the right counts.
class PeriodicSweep : public ::testing::TestWithParam<int> {};

TEST_P(PeriodicSweep, TickCountMatchesPeriod) {
  Simulator sim;
  const int period_ms = GetParam();
  int ticks = 0;
  PeriodicTask task{sim, Duration::millis(period_ms), [&] { ++ticks; }};
  task.start();
  sim.run_for(Duration::seconds(3));
  EXPECT_EQ(ticks, 3000 / period_ms);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodicSweep,
                         ::testing::Values(1, 3, 7, 20, 50, 125, 300, 1000));

}  // namespace
}  // namespace blab::sim
