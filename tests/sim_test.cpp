// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/periodic.hpp"
#include "sim/simulator.hpp"

namespace blab::sim {
namespace {

using util::Duration;
using util::TimePoint;

TEST(SimulatorTest, StartsAtEpoch) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::epoch());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(30), [&] { order.push_back(3); });
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::millis(30));
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const auto t = Duration::millis(5);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(t, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_after(Duration::seconds(2), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, TimePoint::epoch() + Duration::seconds(2));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::millis(10), [&] { ++fired; });
  sim.schedule_after(Duration::millis(50), [&] { ++fired; });
  const auto n = sim.run_until(TimePoint::epoch() + Duration::millis(20));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::millis(20));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.run_for(Duration::seconds(1));
  sim.run_for(Duration::seconds(2));
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::seconds(3));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(Duration::millis(5), [&] {
    fired = true;
  });
  EXPECT_TRUE(sim.is_pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.is_pending(id));
  EXPECT_FALSE(sim.cancel(id)) << "double cancel must fail";
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelOfFiredEventFails) {
  Simulator sim;
  const EventId id = sim.schedule_after(Duration::millis(1), [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.is_pending(id));
}

TEST(SimulatorTest, EventsScheduledFromCallbacksRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.schedule_after(Duration::millis(1), recurse);
    }
  };
  sim.schedule_after(Duration::millis(1), recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::millis(5));
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.run_for(Duration::seconds(5));
  bool fired = false;
  sim.schedule_at(TimePoint::epoch() + Duration::seconds(1), [&] {
    fired = true;
  });
  sim.step();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), TimePoint::epoch() + Duration::seconds(5));
}

TEST(SimulatorTest, RunAllReportsTrippedCap) {
  Simulator sim;
  std::function<void()> forever = [&] {
    sim.schedule_after(Duration::millis(1), forever);
  };
  sim.schedule_after(Duration::millis(1), forever);
  EXPECT_EQ(sim.run_all(1000), 1000u);
  EXPECT_TRUE(sim.hit_cap()) << "runaway task must be distinguishable";
  EXPECT_EQ(sim.pending_events(), 1u) << "the rescheduled event is pending";
}

TEST(SimulatorTest, RunAllDrainedQueueClearsHitCap) {
  Simulator sim;
  std::function<void()> forever = [&] {
    sim.schedule_after(Duration::millis(1), forever);
  };
  sim.schedule_after(Duration::millis(1), forever);
  EXPECT_EQ(sim.run_all(10), 10u);
  ASSERT_TRUE(sim.hit_cap());
  // Drop the runaway chain: the next drain empties cleanly.
  for (int i = 0; i < 3; ++i) sim.schedule_after(Duration::millis(1), [] {});
  sim.run_until(sim.now());  // no-op; the chain event is still pending
  forever = [] {};           // break the self-rescheduling cycle
  sim.run_all(100);
  EXPECT_FALSE(sim.hit_cap()) << "a drained queue must not report a cap trip";
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, PeriodicTaskTripsRunAllCap) {
  // Regression: a self-rescheduling periodic task never drains; callers of
  // run_all must see hit_cap() rather than mistaking the cap for a drain.
  Simulator sim;
  PeriodicTask poller{sim, Duration::millis(10), [] {}};
  poller.start();
  EXPECT_EQ(sim.run_all(500), 500u);
  EXPECT_TRUE(sim.hit_cap());
  poller.stop();
  sim.run_all();
  EXPECT_FALSE(sim.hit_cap()) << "stopped task drains; cap flag resets";
}

TEST(SimulatorTest, TraceHookSeesEveryExecutedEvent) {
  Simulator sim;
  std::vector<std::string> labels;
  sim.set_trace_hook([&](TimePoint, std::uint64_t, const std::string& label) {
    labels.push_back(label);
  });
  sim.schedule_after(Duration::millis(2), [] {}, "second");
  sim.schedule_after(Duration::millis(1), [] {}, "first");
  sim.schedule_after(Duration::millis(3), [] {}, "third");
  sim.run_for(Duration::millis(2));  // run_until path
  sim.run_all();                     // step path
  EXPECT_EQ(labels,
            (std::vector<std::string>{"first", "second", "third"}));
  sim.set_trace_hook(nullptr);
  EXPECT_FALSE(sim.has_trace_hook());
}

TEST(SimulatorTest, ExecutedEventCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(Duration::millis(i), [] {});
  sim.run_all();
  EXPECT_EQ(sim.executed_events(), 7u);
}

// ------------------------------------------------------------ periodic ----

TEST(PeriodicTaskTest, TicksAtPeriod) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task{sim, Duration::millis(100), [&] { ++ticks; }};
  task.start();
  sim.run_for(Duration::millis(1000));
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(task.ticks(), 10u);
}

TEST(PeriodicTaskTest, StartAfterInitialDelay) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task{sim, Duration::millis(100), [&] { ++ticks; }};
  task.start_after(Duration::millis(500));
  sim.run_for(Duration::millis(450));
  EXPECT_EQ(ticks, 0);
  sim.run_for(Duration::millis(100));
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTaskTest, StopHalts) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task{sim, Duration::millis(10), [&] { ++ticks; }};
  task.start();
  sim.run_for(Duration::millis(35));
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_for(Duration::millis(100));
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTaskTest, SelfStopInsideTickDoesNotRearm) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task{sim, Duration::millis(10), [&] {
    if (++ticks == 3) handle->stop();
  }};
  handle = &task;
  task.start();
  sim.run_for(Duration::millis(200));
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, RestartAfterStop) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task{sim, Duration::millis(10), [&] { ++ticks; }};
  task.start();
  sim.run_for(Duration::millis(25));
  task.stop();
  task.start();
  sim.run_for(Duration::millis(25));
  EXPECT_EQ(ticks, 4);
}

TEST(PeriodicTaskTest, DestructionCancelsCleanly) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task{sim, Duration::millis(10), [&] { ++ticks; }};
    task.start();
    sim.run_for(Duration::millis(15));
  }
  sim.run_for(Duration::millis(100));  // must not crash on dangling events
  EXPECT_EQ(ticks, 1);
}

// Property: N periodic tasks with co-prime periods fire the right counts.
class PeriodicSweep : public ::testing::TestWithParam<int> {};

TEST_P(PeriodicSweep, TickCountMatchesPeriod) {
  Simulator sim;
  const int period_ms = GetParam();
  int ticks = 0;
  PeriodicTask task{sim, Duration::millis(period_ms), [&] { ++ticks; }};
  task.start();
  sim.run_for(Duration::seconds(3));
  EXPECT_EQ(ticks, 3000 / period_ms);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodicSweep,
                         ::testing::Values(1, 3, 7, 20, 50, 125, 300, 1000));

}  // namespace
}  // namespace blab::sim
