// Unit tests for automation channels (ADB / UI-test / BT keyboard), the
// script runner, and the §4.2 browser workload driver.
#include <gtest/gtest.h>

#include <memory>

#include "automation/browser_workload.hpp"
#include "automation/bt_hid.hpp"
#include "automation/channels.hpp"
#include "automation/script.hpp"
#include "device/android.hpp"
#include "device/browser.hpp"

namespace blab::automation {
namespace {

using util::Duration;

class AutomationFixture : public ::testing::Test {
 protected:
  AutomationFixture() : net{sim, 55} {
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(Duration::millis(4), 900.0));
    vp = std::make_unique<api::VantagePoint>(sim, net);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(Duration::millis(6), 200.0));
    device::DeviceSpec spec;
    spec.serial = "J7DUO-1";
    auto added = vp->add_device(spec);
    EXPECT_TRUE(added.ok());
    dev = added.value();
    api = std::make_unique<api::BatteryLabApi>(*vp);
  }

  device::Browser* install_browser(const device::BrowserProfile& profile) {
    auto browser = std::make_unique<device::Browser>(*dev, profile);
    device::Browser* ptr = browser.get();
    EXPECT_TRUE(dev->os().install(std::move(browser)).ok());
    return ptr;
  }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<api::VantagePoint> vp;
  device::AndroidDevice* dev = nullptr;
  std::unique_ptr<api::BatteryLabApi> api;
};

// ------------------------------------------------------------ channels ----

TEST_F(AutomationFixture, AdbChannelDrivesDevice) {
  device::Browser* b = install_browser(device::BrowserProfile::brave());
  AdbChannel channel{*api, "J7DUO-1"};
  ASSERT_TRUE(channel.launch_app(b->package()).ok());
  EXPECT_TRUE(b->running());
  ASSERT_TRUE(channel.tap(540, 1700).ok());
  ASSERT_TRUE(channel.tap(540, 1700).ok());
  EXPECT_TRUE(b->first_run_complete());
  ASSERT_TRUE(channel.text("news-a.example").ok());
  ASSERT_TRUE(channel.key(device::kKeycodeEnter).ok());
  EXPECT_TRUE(b->page_loading());
  ASSERT_TRUE(channel.stop_app(b->package()).ok());
  EXPECT_FALSE(b->running());
  EXPECT_TRUE(channel.supports_app_management());
}

TEST_F(AutomationFixture, UiTestChannelNeedsNoNetwork) {
  device::Browser* b = install_browser(device::BrowserProfile::edge());
  UiTestChannel channel{*dev};
  const auto tx_before = net.stats(vp->controller_host()).msgs_tx;
  ASSERT_TRUE(channel.launch_app(b->package()).ok());
  ASSERT_TRUE(channel.tap(1, 1).ok());
  ASSERT_TRUE(channel.tap(1, 1).ok());
  ASSERT_TRUE(channel.swipe(-500).ok());
  EXPECT_EQ(net.stats(vp->controller_host()).msgs_tx, tx_before)
      << "instrumented builds need no channel to the Pi (§3.3)";
}

TEST_F(AutomationFixture, BtKeyboardRequiresHidPairing) {
  BtHidService hid{*dev};
  BtKeyboardChannel channel{net, vp->controller().bluetooth(), *dev};
  EXPECT_FALSE(channel.ready().ok()) << "not paired yet";
  net::BluetoothAdapter dev_bt{net, dev->host()};
  ASSERT_TRUE(
      vp->controller().bluetooth().pair(dev_bt, net::BtProfile::kHid).ok());
  EXPECT_TRUE(channel.ready().ok());
}

TEST_F(AutomationFixture, BtKeyboardInjectsOverRadio) {
  device::Browser* b = install_browser(device::BrowserProfile::brave());
  BtHidService hid{*dev};
  net::BluetoothAdapter dev_bt{net, dev->host()};
  ASSERT_TRUE(
      vp->controller().bluetooth().pair(dev_bt, net::BtProfile::kHid).ok());
  BtKeyboardChannel channel{net, vp->controller().bluetooth(), *dev};

  ASSERT_TRUE(channel.launch_app(b->package()).ok());
  sim.run_for(Duration::millis(200));
  EXPECT_TRUE(b->running());
  ASSERT_TRUE(channel.tap(0, 0).ok());
  ASSERT_TRUE(channel.tap(0, 0).ok());
  sim.run_for(Duration::millis(200));
  EXPECT_TRUE(b->first_run_complete());
  ASSERT_TRUE(channel.text("news-b.example").ok());
  ASSERT_TRUE(channel.key(device::kKeycodeEnter).ok());
  sim.run_for(Duration::seconds(8));
  EXPECT_EQ(b->pages_loaded(), 1u);
  EXPECT_GT(hid.events_injected(), 3u);
}

TEST_F(AutomationFixture, BtKeyboardCannotManageAppState) {
  BtKeyboardChannel channel{net, vp->controller().bluetooth(), *dev};
  EXPECT_FALSE(channel.supports_app_management());
  const auto st = channel.clear_app("com.foo");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::ErrorCode::kUnsupported);
  EXPECT_FALSE(channel.stop_app("com.foo").ok());
}

// -------------------------------------------------------------- script ----

TEST_F(AutomationFixture, ScriptBuilderAccumulatesSteps) {
  Script s;
  s.launch("com.foo")
      .then(Duration::millis(500))
      .type("url")
      .press_enter()
      .then(Duration::seconds(6))
      .swipe(-600)
      .wait(Duration::seconds(1))
      .stop("com.foo");
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.steps()[0].delay_after, Duration::millis(500));
  EXPECT_EQ(s.steps()[2].a, device::kKeycodeEnter);
}

TEST_F(AutomationFixture, ScriptRunnerAdvancesSimTime) {
  device::Browser* b = install_browser(device::BrowserProfile::brave());
  AdbChannel channel{*api, "J7DUO-1"};
  Script s;
  s.launch(b->package())
      .then(Duration::millis(500))
      .tap(0, 0)
      .tap(0, 0)
      .type("news-a.example")
      .press_enter()
      .then(Duration::seconds(6));
  const auto t0 = sim.now();
  auto stats = run_script(sim, channel, s);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().steps_executed, 5u);
  EXPECT_EQ(stats.value().steps_failed, 0u);
  EXPECT_GE((sim.now() - t0).to_seconds(), 6.5);
  EXPECT_EQ(b->pages_loaded(), 1u);
}

TEST_F(AutomationFixture, ScriptStopsOnErrorByDefault) {
  AdbChannel channel{*api, "J7DUO-1"};
  Script s;
  s.launch("com.not.installed").wait(Duration::seconds(1));
  auto stats = run_script(sim, channel, s);
  EXPECT_FALSE(stats.ok());
}

TEST_F(AutomationFixture, ScriptContinuesWhenAskedTo) {
  AdbChannel channel{*api, "J7DUO-1"};
  Script s;
  s.launch("com.not.installed").wait(Duration::millis(10));
  auto stats = run_script(sim, channel, s, /*stop_on_error=*/false);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().steps_failed, 1u);
  EXPECT_EQ(stats.value().steps_executed, 2u);
}

// ---------------------------------------------------- browser workload ----

TEST_F(AutomationFixture, PageScriptShape) {
  BrowserWorkloadOptions options;
  options.scrolls_per_page = 4;
  const Script s = build_browser_page_script("news-a.example", options);
  // type + enter + 4 swipes.
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.steps()[1].delay_after, options.page_wait);
}

TEST_F(AutomationFixture, WorkloadProducesCaptureAndStats) {
  BrowserWorkloadOptions options;
  options.pages = 2;
  options.scrolls_per_page = 2;
  auto run = run_browser_energy_test(*api, "J7DUO-1",
                                     device::BrowserProfile::brave(), options);
  ASSERT_TRUE(run.ok()) << run.error().str();
  const auto& r = run.value();
  EXPECT_EQ(r.browser, "Brave");
  EXPECT_EQ(r.pages_loaded, 2u);
  EXPECT_GT(r.capture.sample_count(), 50'000u);
  EXPECT_GT(r.mean_current_ma, 100.0);
  EXPECT_LT(r.mean_current_ma, 500.0);
  EXPECT_GT(r.discharge_mah, 0.0);
  EXPECT_GT(r.bytes_fetched, 2u * 1024 * 1024);
  EXPECT_GT(r.device_cpu.count(), 50u);
  EXPECT_GT(r.controller_cpu.count(), 50u);
  // Monitor restored to idle state afterwards.
  EXPECT_FALSE(vp->monitor().capturing());
  EXPECT_FALSE(api->monitoring());
}

TEST_F(AutomationFixture, WorkloadMirroringCostsEnergyAndCpu) {
  BrowserWorkloadOptions base;
  base.pages = 2;
  base.scrolls_per_page = 2;
  auto plain = run_browser_energy_test(
      *api, "J7DUO-1", device::BrowserProfile::chrome(), base);
  ASSERT_TRUE(plain.ok()) << plain.error().str();

  BrowserWorkloadOptions mirrored = base;
  mirrored.mirroring = true;
  auto with_mirror = run_browser_energy_test(
      *api, "J7DUO-1", device::BrowserProfile::chrome(), mirrored);
  ASSERT_TRUE(with_mirror.ok()) << with_mirror.error().str();

  EXPECT_GT(with_mirror.value().mean_current_ma,
            plain.value().mean_current_ma + 20.0);
  // §4.2: mirroring adds ~5% device CPU.
  EXPECT_NEAR(with_mirror.value().device_cpu.median() -
                  plain.value().device_cpu.median(),
              0.05, 0.035);
  // Controller load rises a lot (§4.2: ~25% -> ~75% median).
  EXPECT_GT(with_mirror.value().controller_cpu.median(),
            plain.value().controller_cpu.median() + 0.25);
  EXPECT_FALSE(api->mirroring_active("J7DUO-1")) << "session closed after run";
}

TEST_F(AutomationFixture, WorkloadUnknownDeviceFails) {
  auto run = run_browser_energy_test(*api, "GHOST",
                                     device::BrowserProfile::brave(), {});
  EXPECT_FALSE(run.ok());
}

TEST_F(AutomationFixture, SampleTimelineCdfCountsPeriods) {
  hw::Timeline tl;
  tl.set(util::TimePoint::epoch(), 0.25);
  const auto cdf = sample_timeline_cdf(
      tl, util::TimePoint::epoch(),
      util::TimePoint::epoch() + Duration::seconds(10),
      Duration::millis(100));
  EXPECT_EQ(cdf.count(), 100u);
  EXPECT_DOUBLE_EQ(cdf.median(), 0.25);
}

// Property sweep: every browser profile completes the workload and the
// capture duration follows pages * (wait + scrolls * gap) within slack.
class WorkloadSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadSweep, AllBrowsersComplete) {
  sim::Simulator sim;
  net::Network net{sim, 77};
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(Duration::millis(4), 900.0));
  api::VantagePoint vp{sim, net};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(Duration::millis(6), 200.0));
  device::DeviceSpec spec;
  spec.serial = "SWEEP";
  ASSERT_TRUE(vp.add_device(spec).ok());
  api::BatteryLabApi api{vp};

  BrowserWorkloadOptions options;
  options.pages = 2;
  options.scrolls_per_page = 3;
  const auto* profile = device::BrowserProfile::find(GetParam());
  ASSERT_NE(profile, nullptr);
  auto run = run_browser_energy_test(api, "SWEEP", *profile, options);
  ASSERT_TRUE(run.ok()) << run.error().str();
  const double expected_s =
      2.0 * (0.5 + options.page_wait.to_seconds() +
             3.0 * options.scroll_gap.to_seconds());
  EXPECT_NEAR(run.value().elapsed.to_seconds(), expected_s, 3.0);
  EXPECT_EQ(run.value().pages_loaded, 2u);
}

INSTANTIATE_TEST_SUITE_P(Browsers, WorkloadSweep,
                         ::testing::Values("Chrome", "Firefox", "Edge",
                                           "Brave"));

}  // namespace
}  // namespace blab::automation
