// Fleet health engine: catalog rollups, SLO burn-rate evaluation, the
// per-vantage health state machine, and the GET /rollup + GET /health REST
// surface (DESIGN.md §15).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/vantage_point.hpp"
#include "hw/power_monitor.hpp"
#include "net/network.hpp"
#include "obs/health/rollup.hpp"
#include "obs/health/slo.hpp"
#include "obs/metrics.hpp"
#include "server/access_server.hpp"
#include "sim/simulator.hpp"
#include "store/capture_store.hpp"
#include "util/rng.hpp"

namespace {

using blab::health::AlertState;
using blab::health::CaptureContext;
using blab::health::HealthState;
using blab::health::Rollup;
using blab::health::RollupEngine;
using blab::health::RollupScope;
using blab::health::SloEngine;
using blab::health::SloSignal;
using blab::health::SloSpec;
using blab::hw::Capture;
using blab::store::CaptureStore;
using blab::util::Duration;
using blab::util::ErrorCode;
using blab::util::TimePoint;

Capture make_capture(std::uint64_t seed, std::size_t n, double base = 300.0) {
  blab::util::Rng rng{seed};
  std::vector<float> samples;
  samples.reserve(n);
  double v = base;
  for (std::size_t i = 0; i < n; ++i) {
    v = std::clamp(v + rng.uniform(-8.0, 8.0), 5.0, 4500.0);
    samples.push_back(static_cast<float>(v));
  }
  return Capture{TimePoint::epoch(), 5000.0, 3.85, samples};
}

// ------------------------------------------------------------------------
// RollupEngine.
// ------------------------------------------------------------------------

TEST(Rollup, FleetScopeFoldsEveryCaptureIntoOneGroup) {
  CaptureStore store;
  const auto a = store.append("job-a", "m0", make_capture(1, 6000),
                              TimePoint::epoch());
  const auto b = store.append("job-a", "m1", make_capture(2, 6000),
                              TimePoint::epoch() + Duration::seconds(1));
  const auto c = store.append("job-b", "m2", make_capture(3, 6000),
                              TimePoint::epoch() + Duration::seconds(2));
  ASSERT_FALSE(a.workspace.empty() || b.workspace.empty() ||
               c.workspace.empty());

  RollupEngine engine{store};
  const Rollup rollup = engine.compute(RollupScope::kFleet);
  EXPECT_EQ(rollup.captures_scanned, 3u);
  EXPECT_EQ(rollup.captures_skipped, 0u);
  ASSERT_EQ(rollup.groups.size(), 1u);
  const auto& g = rollup.groups.front();
  EXPECT_EQ(g.key, "fleet");
  EXPECT_EQ(g.captures, 3u);
  EXPECT_EQ(g.samples, 18000u);

  // The documented determinism contract: the fold equals a plain
  // ascending-id sum over the footer summaries, bit for bit.
  double energy = 0.0, charge = 0.0, mean_acc = 0.0;
  std::uint64_t samples = 0;
  for (const auto& id : store.catalog(TimePoint::epoch(), TimePoint::max())) {
    const auto s = store.summary(id);
    ASSERT_TRUE(s.ok());
    energy += s.value().energy_mwh;
    charge += s.value().charge_mah;
    mean_acc += s.value().mean_ma * static_cast<double>(s.value().samples);
    samples += s.value().samples;
  }
  EXPECT_EQ(g.energy_mwh, energy);
  EXPECT_EQ(g.charge_mah, charge);
  EXPECT_EQ(g.mean_ma, mean_acc / static_cast<double>(samples));
  EXPECT_GT(g.energy_mwh, 0.0);
  EXPECT_GT(g.p95_ma, 0.0);
  EXPECT_GE(g.p99_ma, g.p95_ma);
  EXPECT_GE(g.max_ma, g.min_ma);
}

TEST(Rollup, JobScopeGroupsByWorkspaceAscending) {
  CaptureStore store;
  (void)store.append("job-b", "m0", make_capture(4, 1000), TimePoint::epoch());
  (void)store.append("job-a", "m1", make_capture(5, 1000), TimePoint::epoch());
  (void)store.append("job-a", "m2", make_capture(6, 1000), TimePoint::epoch());

  RollupEngine engine{store};
  const Rollup rollup = engine.compute(RollupScope::kJob);
  ASSERT_EQ(rollup.groups.size(), 2u);
  EXPECT_EQ(rollup.groups[0].key, "job-a");
  EXPECT_EQ(rollup.groups[0].captures, 2u);
  EXPECT_EQ(rollup.groups[1].key, "job-b");
  EXPECT_EQ(rollup.groups[1].captures, 1u);
}

TEST(Rollup, VantageScopeUsesResolverAndClassBreakdown) {
  CaptureStore store;
  (void)store.append("job-a", "m0", make_capture(7, 1000), TimePoint::epoch());
  (void)store.append("job-b", "m1", make_capture(8, 1000), TimePoint::epoch());

  RollupEngine engine{store};
  engine.set_context_resolver([](const std::string& workspace) {
    CaptureContext ctx;
    if (workspace == "job-a") {
      ctx.vantage = "node-eu";
      ctx.device_class = "android-phone";
    }
    // job-b resolves to nothing -> "unassigned"/"unknown".
    return ctx;
  });
  const Rollup rollup = engine.compute(RollupScope::kVantage);
  ASSERT_EQ(rollup.groups.size(), 2u);
  EXPECT_EQ(rollup.groups[0].key, "node-eu");
  ASSERT_EQ(rollup.groups[0].by_class.count("android-phone"), 1u);
  EXPECT_EQ(rollup.groups[0].by_class.at("android-phone").captures, 1u);
  EXPECT_EQ(rollup.groups[1].key, "unassigned");
  ASSERT_EQ(rollup.groups[1].by_class.count("unknown"), 1u);
}

TEST(Rollup, TimeWindowFiltersOnStoredAt) {
  CaptureStore store;
  (void)store.append("job", "early", make_capture(9, 1000),
                     TimePoint::epoch());
  (void)store.append("job", "late", make_capture(10, 1000),
                     TimePoint::epoch() + Duration::minutes(10));

  RollupEngine engine{store};
  const Rollup windowed =
      engine.compute(RollupScope::kFleet, TimePoint::epoch(),
                     TimePoint::epoch() + Duration::minutes(5));
  EXPECT_EQ(windowed.captures_scanned, 1u);
  const Rollup all = engine.compute(RollupScope::kFleet);
  EXPECT_EQ(all.captures_scanned, 2u);
}

TEST(Rollup, JsonEncodingIsDeterministic) {
  CaptureStore store;
  (void)store.append("job-a", "m0", make_capture(11, 2000),
                     TimePoint::epoch());
  RollupEngine engine{store};
  const std::string first =
      blab::health::encode_rollup_json(engine.compute(RollupScope::kJob));
  const std::string second =
      blab::health::encode_rollup_json(engine.compute(RollupScope::kJob));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"scope\":\"job\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"key\":\"job-a\""), std::string::npos);
  EXPECT_NE(first.find("\"energy_mwh\""), std::string::npos);
}

TEST(Rollup, ScopeParsing) {
  EXPECT_EQ(blab::health::parse_rollup_scope("fleet"), RollupScope::kFleet);
  EXPECT_EQ(blab::health::parse_rollup_scope("job"), RollupScope::kJob);
  EXPECT_EQ(blab::health::parse_rollup_scope("vantage"),
            RollupScope::kVantage);
  EXPECT_FALSE(blab::health::parse_rollup_scope("galaxy").has_value());
  EXPECT_STREQ(blab::health::rollup_scope_name(RollupScope::kVantage),
               "vantage");
}

TEST(Rollup, ScanMetricsAreMirrored) {
  CaptureStore store;
  (void)store.append("job", "m", make_capture(12, 1000), TimePoint::epoch());
  blab::obs::MetricsRegistry registry;
  RollupEngine engine{store};
  engine.attach_metrics(&registry);
  (void)engine.compute(RollupScope::kFleet);
  (void)engine.compute(RollupScope::kJob);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.value_or("blab_rollup_scans_total"), 2.0);
  EXPECT_EQ(snap.value_or("blab_rollup_captures_scanned_total"), 2.0);
}

// ------------------------------------------------------------------------
// SloEngine: burn-rate math, multi-window rule, health hysteresis.
// ------------------------------------------------------------------------

SloSpec ratio_spec() {
  SloSpec spec;
  spec.name = "test-slo";
  spec.signal.kind = SloSignal::Kind::kCounterRatio;
  spec.signal.bad.push_back({"bad_total", {}});
  spec.signal.total.push_back({"all_total", {}});
  spec.objective = 0.90;  // 10% error budget
  spec.long_window = Duration::minutes(10);
  spec.short_window = Duration::minutes(2);
  spec.fast_burn = 5.0;
  spec.slow_burn = 1.5;
  return spec;
}

TEST(Slo, QuietSignalStaysHealthy) {
  blab::obs::MetricsRegistry registry;
  SloEngine engine{registry};
  engine.add_spec(ratio_spec());
  auto& total = registry.counter("all_total");
  TimePoint now = TimePoint::epoch();
  for (int i = 0; i < 5; ++i) {
    total.inc(100);
    now = now + Duration::minutes(1);
    engine.evaluate(now);
  }
  ASSERT_EQ(engine.statuses().size(), 1u);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kOk);
  EXPECT_EQ(engine.overall(), HealthState::kHealthy);
  EXPECT_EQ(engine.evaluations(), 5u);
}

TEST(Slo, FastBurnRequiresBothWindowsAndEscalatesImmediately) {
  blab::obs::MetricsRegistry registry;
  SloEngine engine{registry};
  engine.add_spec(ratio_spec());
  auto& bad = registry.counter("bad_total");
  auto& total = registry.counter("all_total");

  TimePoint now = TimePoint::epoch();
  engine.evaluate(now);  // zero baseline
  // 100% bad traffic: bad fraction 1.0 over a 0.1 budget = burn 10 on both
  // windows, past fast_burn=5.
  bad.inc(100);
  total.inc(100);
  now = now + Duration::minutes(1);
  engine.evaluate(now);
  ASSERT_EQ(engine.statuses().size(), 1u);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFastBurn);
  EXPECT_GE(engine.statuses()[0].burn_long, 5.0);
  EXPECT_GE(engine.statuses()[0].burn_short, 5.0);
  // A fleet-wide spec feeds the "fleet" bucket; escalation is immediate.
  EXPECT_EQ(engine.health_of("fleet"), HealthState::kUnhealthy);
  EXPECT_EQ(engine.overall(), HealthState::kUnhealthy);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.value_or("blab_slo_state",
                          {{"slo", "test-slo"}, {"vp", "fleet"}}),
            2.0);
  EXPECT_GT(snap.value_or("blab_slo_transitions_total",
                          {{"slo", "test-slo"}, {"to", "fast_burn"},
                           {"vp", "fleet"}}),
            0.0);
}

TEST(Slo, ShortWindowRecoveryClearsTheAlertButHealthRecoversSlowly) {
  blab::obs::MetricsRegistry registry;
  SloEngine engine{registry};
  engine.add_spec(ratio_spec());
  auto& bad = registry.counter("bad_total");
  auto& total = registry.counter("all_total");

  TimePoint now = TimePoint::epoch();
  engine.evaluate(now);
  bad.inc(100);
  total.inc(100);
  now = now + Duration::minutes(1);
  engine.evaluate(now);
  ASSERT_EQ(engine.health_of("fleet"), HealthState::kUnhealthy);

  // Clean traffic from here on. Once sim time moves the long window past
  // the bad burst, both burns drop and the alert clears — but the health
  // state steps down only one level per kRecoveryEvals clean rounds.
  std::vector<HealthState> timeline;
  for (int i = 0; i < 12; ++i) {
    total.inc(1000);
    now = now + Duration::minutes(2);
    engine.evaluate(now);
    timeline.push_back(engine.health_of("fleet"));
  }
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kOk);
  EXPECT_EQ(timeline.back(), HealthState::kHealthy);
  // The walk down must pass through degraded — never unhealthy -> healthy
  // in one step.
  EXPECT_NE(std::find(timeline.begin(), timeline.end(),
                      HealthState::kDegraded),
            timeline.end());
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LE(static_cast<int>(timeline[i - 1]) -
                  static_cast<int>(timeline[i]),
              1)
        << "health state recovered more than one level at step " << i;
  }
}

TEST(Slo, HistogramAboveSignalCountsTailObservations) {
  blab::obs::MetricsRegistry registry;
  auto& hist = registry.histogram("wait_seconds", {1.0, 10.0, 60.0});
  SloSpec spec;
  spec.name = "wait-p99";
  spec.signal.kind = SloSignal::Kind::kHistogramAbove;
  spec.signal.total.push_back({"wait_seconds", {}});
  spec.signal.above_bound = 60.0;
  spec.objective = 0.90;
  spec.long_window = Duration::minutes(10);
  spec.short_window = Duration::minutes(2);
  spec.fast_burn = 5.0;
  spec.slow_burn = 1.5;
  SloEngine engine{registry};
  engine.add_spec(spec);

  TimePoint now = TimePoint::epoch();
  engine.evaluate(now);
  // All observations land above the 60 s bound -> 100% bad.
  for (int i = 0; i < 50; ++i) hist.observe(120.0);
  now = now + Duration::minutes(1);
  engine.evaluate(now);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFastBurn);

  // Fast observations below the bound are good traffic.
  blab::obs::MetricsRegistry registry2;
  auto& hist2 = registry2.histogram("wait_seconds", {1.0, 10.0, 60.0});
  SloEngine engine2{registry2};
  engine2.add_spec(spec);
  TimePoint t2 = TimePoint::epoch();
  engine2.evaluate(t2);
  for (int i = 0; i < 50; ++i) hist2.observe(0.5);
  t2 = t2 + Duration::minutes(1);
  engine2.evaluate(t2);
  EXPECT_EQ(engine2.statuses()[0].state, AlertState::kOk);
}

TEST(Slo, PerVantageSpecsDriveSeparateHealthStates) {
  blab::obs::MetricsRegistry registry;
  SloSpec spec = ratio_spec();
  spec.name = "vantage-errors";
  spec.vantage = "node-a";
  spec.signal.bad = {{"node_bad", {}}};
  spec.signal.total = {{"node_total", {}}};
  SloEngine engine{registry};
  engine.add_spec(spec);
  engine.add_spec(ratio_spec());  // fleet-wide, stays quiet

  TimePoint now = TimePoint::epoch();
  engine.evaluate(now);
  registry.counter("node_bad").inc(50);
  registry.counter("node_total").inc(50);
  registry.counter("all_total").inc(1000);
  now = now + Duration::minutes(1);
  engine.evaluate(now);
  EXPECT_EQ(engine.health_of("node-a"), HealthState::kUnhealthy);
  EXPECT_EQ(engine.health_of("fleet"), HealthState::kHealthy);
  EXPECT_EQ(engine.health_of("node-unknown"), HealthState::kHealthy);
  EXPECT_EQ(engine.overall(), HealthState::kUnhealthy);
  const auto vantages = engine.vantages();
  ASSERT_EQ(vantages.size(), 2u);
  EXPECT_EQ(vantages[0].vantage, "fleet");
  EXPECT_EQ(vantages[1].vantage, "node-a");
}

TEST(Slo, DefaultSpecSetCoversFleetAndEveryVantage) {
  const auto specs = blab::health::default_slo_specs({"lab-eu", "lab-us"});
  ASSERT_EQ(specs.size(), 5u);
  std::size_t fleet = 0, vantage = 0;
  for (const auto& spec : specs) {
    if (spec.vantage.empty()) ++fleet;
    else ++vantage;
  }
  EXPECT_EQ(fleet, 3u);
  EXPECT_EQ(vantage, 2u);
  const auto named = [&](const std::string& name) {
    return std::any_of(specs.begin(), specs.end(),
                       [&](const SloSpec& s) { return s.name == name; });
  };
  EXPECT_TRUE(named("job-completion"));
  EXPECT_TRUE(named("queue-wait-p99"));
  EXPECT_TRUE(named("capture-clamp-rate"));
  EXPECT_TRUE(named("vantage-errors"));
}

TEST(Slo, HealthJsonIsDeterministicAndNamesEveryVantage) {
  blab::obs::MetricsRegistry registry;
  SloEngine engine{registry};
  engine.add_spec(ratio_spec());
  engine.evaluate(TimePoint::epoch());
  const std::string first = blab::health::encode_health_json(engine);
  const std::string second = blab::health::encode_health_json(engine);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"overall\":\"healthy\""), std::string::npos)
      << first;
  EXPECT_NE(first.find("\"slos\""), std::string::npos);
  EXPECT_NE(first.find("\"test-slo\""), std::string::npos);
}

// ------------------------------------------------------------------------
// AccessServer REST surface.
// ------------------------------------------------------------------------

TEST(HealthRest, EnableHealthServesRollupAndHealthEndpoints) {
  blab::sim::Simulator sim;
  blab::net::Network net{sim, 7};
  blab::server::AccessServer server{sim, net};
  EXPECT_FALSE(server.health_enabled());
  ASSERT_TRUE(server.enable_health().ok());
  EXPECT_TRUE(server.health_enabled());
  // Idempotence guard: a second enable is a typed error, not a reset.
  EXPECT_EQ(server.enable_health().error().code, ErrorCode::kAlreadyExists);

  auto* rest = server.health_rest();
  ASSERT_NE(rest, nullptr);
  const auto fleet = rest->call("rollup", "scope=fleet");
  ASSERT_TRUE(fleet.ok()) << fleet.error().str();
  EXPECT_NE(fleet.value().find("\"scope\":\"fleet\""), std::string::npos);
  const auto health = rest->call("health", "");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health.value().find("\"overall\""), std::string::npos);

  // Hostile queries get typed 400s, not crashes or defaults.
  EXPECT_EQ(rest->call("rollup", "scope=galaxy").error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(rest->call("rollup", "scope=fleet&t0_us=abc").error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(rest->call("rollup", "t1_us=-5").error().code,
            ErrorCode::kInvalidArgument);
}

TEST(HealthRest, SchedulingRequiresTheMatchingEngine) {
  blab::sim::Simulator sim;
  blab::net::Network net{sim, 8};
  blab::server::AccessServer server{sim, net};
  EXPECT_EQ(server.schedule_health_evaluations(Duration::minutes(1))
                .error()
                .code,
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(server.schedule_persist_checkpoints(Duration::minutes(1))
                .error()
                .code,
            ErrorCode::kFailedPrecondition);
  // With a vantage point onboarded, the recurring evaluation job actually
  // dispatches and advances the SLO engine on the sim-time cadence.
  auto vp = std::make_unique<blab::api::VantagePoint>(sim, net);
  ASSERT_TRUE(server.onboard_vantage_point("node1", *vp).ok());
  ASSERT_TRUE(server.enable_health().ok());
  EXPECT_TRUE(server.schedule_health_evaluations(Duration::minutes(1)).ok());
  sim.run_for(Duration::minutes(3));
  EXPECT_GE(server.slo_engine()->evaluations(), 2u);
  const auto snap = sim.metrics().snapshot();
  EXPECT_GE(snap.value_or("blab_slo_evaluations_total"), 2.0);
}

}  // namespace
