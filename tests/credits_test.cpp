// Tests for the credit system and tester recruitment (§3, §5).
#include <gtest/gtest.h>

#include <memory>

#include "server/access_server.hpp"
#include "server/credits.hpp"
#include "server/testers.hpp"

namespace blab::server {
namespace {

using util::Duration;
using util::TimePoint;

// -------------------------------------------------------------- ledger ----

TEST(CreditLedgerTest, OpenDepositChargeBalance) {
  CreditLedger ledger;
  ASSERT_TRUE(ledger.open_account("alice", 10.0).ok());
  EXPECT_FALSE(ledger.open_account("alice").ok());
  EXPECT_FALSE(ledger.open_account("").ok());
  EXPECT_DOUBLE_EQ(ledger.balance("alice").value(), 10.0);
  ASSERT_TRUE(ledger.deposit("alice", 5.0, "gift", TimePoint::epoch()).ok());
  ASSERT_TRUE(ledger.charge("alice", 12.0, "usage", TimePoint::epoch()).ok());
  EXPECT_DOUBLE_EQ(ledger.balance("alice").value(), 3.0);
  EXPECT_EQ(ledger.history_of("alice").size(), 2u);
}

TEST(CreditLedgerTest, OverdraftRefused) {
  CreditLedger ledger;
  ASSERT_TRUE(ledger.open_account("bob", 5.0).ok());
  const auto st = ledger.charge("bob", 6.0, "too much", TimePoint::epoch());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::ErrorCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(ledger.balance("bob").value(), 5.0) << "charge atomic";
  EXPECT_TRUE(ledger.can_afford("bob", 5.0));
  EXPECT_FALSE(ledger.can_afford("bob", 5.01));
}

TEST(CreditLedgerTest, UnknownAccountsRejected) {
  CreditLedger ledger;
  EXPECT_FALSE(ledger.balance("ghost").ok());
  EXPECT_FALSE(ledger.deposit("ghost", 1.0, "x", TimePoint::epoch()).ok());
  EXPECT_FALSE(ledger.charge("ghost", 1.0, "x", TimePoint::epoch()).ok());
  EXPECT_FALSE(ledger.can_afford("ghost", 0.0));
}

TEST(CreditLedgerTest, NegativeAmountsRejected) {
  CreditLedger ledger;
  ASSERT_TRUE(ledger.open_account("alice").ok());
  EXPECT_FALSE(ledger.deposit("alice", -1.0, "x", TimePoint::epoch()).ok());
  EXPECT_FALSE(ledger.charge("alice", -1.0, "x", TimePoint::epoch()).ok());
}

// --------------------------------------------------------- tester pool ----

class TesterPoolTest : public ::testing::Test {
 protected:
  TesterPoolTest() : pool{users, &ledger} {
    (void)users.register_user("alice", Role::kExperimenter);
    (void)ledger.open_account("alice", 100.0);
  }
  UserDirectory users;
  CreditLedger ledger;
  TesterPool pool;
  TimePoint now = TimePoint::epoch();
};

TEST_F(TesterPoolTest, VolunteerTaskIsFree) {
  auto id = pool.post_task("alice", "node1", "J7DUO-1",
                           "search for three items", TesterSource::kVolunteer,
                           0.0, now);
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(ledger.balance("alice").value(), 100.0);
  const TesterTask* task = pool.find(id.value());
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->state, TaskState::kOpen);
  EXPECT_FALSE(task->toolbar_visible) << "toolbar hidden for testers (§3.2)";
  EXPECT_FALSE(task->invite_token.empty());
}

TEST_F(TesterPoolTest, PaidTaskEscrowsRewardPlusFee) {
  auto id = pool.post_task("alice", "node1", "J7DUO-1", "shop around",
                           TesterSource::kMTurk, 10.0, now);
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(ledger.balance("alice").value(), 100.0 - 12.0);
}

TEST_F(TesterPoolTest, PaidTaskNeedsFunds) {
  auto id = pool.post_task("alice", "node1", "J7DUO-1", "expensive",
                           TesterSource::kFigureEight, 1000.0, now);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code, util::ErrorCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(ledger.balance("alice").value(), 100.0);
}

TEST_F(TesterPoolTest, ClaimCreatesTesterAccountAndBurnsInvite) {
  auto id = pool.post_task("alice", "node1", "J7DUO-1", "scroll a lot",
                           TesterSource::kMTurk, 10.0, now);
  ASSERT_TRUE(id.ok());
  const std::string invite = pool.find(id.value())->invite_token;

  auto claimed = pool.claim(invite, "turker-417");
  ASSERT_TRUE(claimed.ok());
  EXPECT_EQ(claimed.value()->state, TaskState::kClaimed);
  const User* tester = users.find("turker-417");
  ASSERT_NE(tester, nullptr);
  EXPECT_EQ(tester->role, Role::kTester);
  // One-time link: a second claim fails.
  EXPECT_FALSE(pool.claim(invite, "freeloader").ok());
  EXPECT_FALSE(pool.claim("invite-bogus", "nobody").ok());
}

TEST_F(TesterPoolTest, CompletionPaysTheTester) {
  auto id = pool.post_task("alice", "node1", "J7DUO-1", "watch a video",
                           TesterSource::kFigureEight, 20.0, now);
  ASSERT_TRUE(id.ok());
  auto claimed = pool.claim(pool.find(id.value())->invite_token, "annotator");
  ASSERT_TRUE(claimed.ok());
  // Only the poster can sign off.
  EXPECT_FALSE(pool.complete(id.value(), "mallory", now).ok());
  ASSERT_TRUE(pool.complete(id.value(), "alice", now).ok());
  EXPECT_DOUBLE_EQ(ledger.balance("annotator").value(), 20.0);
  EXPECT_EQ(pool.find(id.value())->state, TaskState::kCompleted);
  EXPECT_FALSE(pool.complete(id.value(), "alice", now).ok())
      << "double completion";
}

TEST_F(TesterPoolTest, CancelRefundsEscrow) {
  auto id = pool.post_task("alice", "node1", "J7DUO-1", "never mind",
                           TesterSource::kMTurk, 10.0, now);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(pool.cancel(id.value(), "alice", now).ok());
  EXPECT_DOUBLE_EQ(ledger.balance("alice").value(), 100.0);
  EXPECT_FALSE(pool.claim(pool.find(id.value())->invite_token, "x").ok());
  EXPECT_FALSE(pool.cancel(id.value(), "alice", now).ok());
}

TEST_F(TesterPoolTest, TestersCannotPostTasks) {
  (void)users.register_user("tess", Role::kTester);
  auto id = pool.post_task("tess", "node1", "J7DUO-1", "recursive testers",
                           TesterSource::kVolunteer, 0.0, now);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code, util::ErrorCode::kPermissionDenied);
}

TEST_F(TesterPoolTest, OpenTaskListing) {
  EXPECT_TRUE(pool.open_tasks().empty());
  auto a = pool.post_task("alice", "node1", "J7DUO-1", "a",
                          TesterSource::kVolunteer, 0.0, now);
  auto b = pool.post_task("alice", "node1", "J7DUO-1", "b",
                          TesterSource::kVolunteer, 0.0, now);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(pool.open_tasks().size(), 2u);
  (void)pool.claim(pool.find(a.value())->invite_token, "t1");
  EXPECT_EQ(pool.open_tasks().size(), 1u);
}

// --------------------------------------- credit-gated scheduling (§5) ----

class CreditSchedulingTest : public ::testing::Test {
 protected:
  CreditSchedulingTest() : net{sim, 31}, server{sim, net} {
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(Duration::millis(4), 900.0));
    vp = std::make_unique<api::VantagePoint>(sim, net);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(Duration::millis(6), 200.0));
    device::DeviceSpec spec;
    spec.serial = "J7DUO-1";
    EXPECT_TRUE(vp->add_device(spec).ok());

    server.enable_credit_enforcement();
    (void)server.users().register_user("hoster", Role::kExperimenter);
    EXPECT_TRUE(server.onboard_vantage_point("node1", *vp, "hoster").ok());
    admin = server.users().register_user("root", Role::kAdmin).value();
    alice = server.users().register_user("alice", Role::kExperimenter).value();
  }

  Job timed_job(Duration runtime, Duration max_duration) {
    Job job;
    job.name = "timed";
    job.max_duration = max_duration;
    job.script = [runtime](JobContext& ctx) {
      ctx.api->vantage_point().simulator().run_for(runtime);
      return util::Status::ok_status();
    };
    return job;
  }

  sim::Simulator sim;
  net::Network net;
  AccessServer server;
  std::unique_ptr<api::VantagePoint> vp;
  std::string admin, alice;
};

TEST_F(CreditSchedulingTest, HostingEarnsTheBonus) {
  EXPECT_DOUBLE_EQ(server.credits().balance("hoster").value(),
                   CreditPolicy{}.hosting_bonus);
}

TEST_F(CreditSchedulingTest, BrokeExperimenterStaysQueued) {
  (void)server.credits().open_account("alice", 1.0);
  auto id = server.submit_job(alice,
                              timed_job(Duration::minutes(5),
                                        Duration::minutes(10)));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.approve_pipeline(admin, id.value()).ok());
  EXPECT_EQ(server.run_queue(alice).value(), 0u);
  EXPECT_EQ(server.scheduler().find(id.value())->state, JobState::kQueued);

  // Funding the account unblocks the same job.
  ASSERT_TRUE(server.credits()
                  .deposit("alice", 50.0, "grant", sim.now())
                  .ok());
  EXPECT_EQ(server.run_queue(alice).value(), 1u);
}

TEST_F(CreditSchedulingTest, UsageChargedAndHostPaid) {
  (void)server.credits().open_account("alice", 50.0);
  const double host_before = server.credits().balance("hoster").value();
  auto id = server.submit_job(alice, timed_job(Duration::minutes(5),
                                               Duration::minutes(10)));
  ASSERT_TRUE(server.approve_pipeline(admin, id.value()).ok());
  EXPECT_EQ(server.run_queue(alice).value(), 1u);
  // 5 device-minutes at the default 1 credit/min.
  EXPECT_NEAR(server.credits().balance("alice").value(), 45.0, 0.1);
  EXPECT_NEAR(server.credits().balance("hoster").value(),
              host_before + 5.0 * CreditPolicy{}.host_share, 0.1);
}

TEST_F(CreditSchedulingTest, WithoutEnforcementNobodyPays) {
  sim::Simulator sim2;
  net::Network net2{sim2, 32};
  net2.add_host("internet");
  AccessServer free_server{sim2, net2};
  api::VantagePointConfig config;
  config.name = "noden";
  api::VantagePoint vp2{sim2, net2, config};
  net2.add_link(vp2.controller_host(), "internet",
                net::LinkSpec::symmetric(Duration::millis(6), 200.0));
  device::DeviceSpec spec;
  spec.serial = "FREE-1";
  ASSERT_TRUE(vp2.add_device(spec).ok());
  ASSERT_TRUE(free_server.onboard_vantage_point("noden", vp2).ok());
  const auto admin2 =
      free_server.users().register_user("root", Role::kAdmin).value();
  const auto bob =
      free_server.users().register_user("bob", Role::kExperimenter).value();
  Job job;
  job.script = [](JobContext&) { return util::Status::ok_status(); };
  auto id = free_server.submit_job(bob, std::move(job));
  ASSERT_TRUE(free_server.approve_pipeline(admin2, id.value()).ok());
  EXPECT_EQ(free_server.run_queue(bob).value(), 1u)
      << "no ledger attached, no credit gate";
}

}  // namespace
}  // namespace blab::server
