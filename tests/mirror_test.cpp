// Unit tests for device mirroring: encoder model, scrcpy server, VNC,
// noVNC gateway, full sessions and the latency probe.
#include <gtest/gtest.h>

#include <memory>

#include "controller/controller.hpp"
#include "device/android.hpp"
#include "device/video_player.hpp"
#include "mirror/encoder.hpp"
#include "mirror/novnc.hpp"
#include "mirror/scrcpy.hpp"
#include "mirror/session.hpp"
#include "mirror/vnc.hpp"
#include "net/wifi.hpp"
#include "util/stats.hpp"

namespace blab::mirror {
namespace {

using util::Duration;
using util::TimePoint;

// ------------------------------------------------------------- encoder ----

TEST(EncoderTest, OutputCappedAtConfiguredBitrate) {
  EncoderConfig cfg;  // 1 Mbps cap, the paper's setting
  EXPECT_LE(H264Encoder::output_mbps(cfg, 1.0), 1.0);
  EXPECT_LE(H264Encoder::output_mbps(cfg, 0.6), 1.0);
  EXPECT_LT(H264Encoder::output_mbps(cfg, 0.0), 0.15)
      << "static screen costs little";
}

TEST(EncoderTest, OutputMonotoneInChangeRate) {
  EncoderConfig cfg;
  cfg.bitrate_cap_mbps = 100.0;  // effectively uncapped
  double prev = -1.0;
  for (double c = 0.0; c <= 1.0; c += 0.05) {
    const double mbps = H264Encoder::output_mbps(cfg, c);
    EXPECT_GE(mbps, prev);
    prev = mbps;
  }
}

TEST(EncoderTest, DeviceCpuAroundFivePercent) {
  // Averaged over a browsing mix (idle/scroll/load), the scrcpy server
  // should cost about 5% device CPU (§4.2).
  const double avg = (H264Encoder::device_cpu_demand(0.05) +
                      H264Encoder::device_cpu_demand(0.40) +
                      H264Encoder::device_cpu_demand(0.50)) /
                     3.0;
  EXPECT_NEAR(avg, 0.05, 0.01);
}

// ----------------------------------------------------------------- vnc ----

TEST(VncTest, UpdatesFanOutToSubscribers) {
  VncServer vnc;
  int calls = 0;
  std::uint64_t last_seq = 0;
  const int token = vnc.subscribe([&](const FramebufferUpdate& u) {
    ++calls;
    last_seq = u.sequence;
  });
  vnc.update({1, 1000, 0.5, TimePoint::epoch()});
  vnc.update({2, 900, 0.4, TimePoint::epoch()});
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(last_seq, 2u);
  EXPECT_EQ(vnc.version(), 2u);
  vnc.unsubscribe(token);
  vnc.update({3, 100, 0.1, TimePoint::epoch()});
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(vnc.subscriber_count(), 0u);
}

// ------------------------------------------------------ session fixture ----

class MirrorFixture : public ::testing::Test {
 protected:
  MirrorFixture() : net{sim, 33} {
    ctrl = std::make_unique<controller::Controller>(sim, net, "ctrl", 1);
    ap = std::make_unique<net::WifiAccessPoint>(net, "ctrl", "ctrl");
    device::DeviceSpec spec;
    spec.serial = "M1";
    dev = std::make_unique<device::AndroidDevice>(sim, net, "dev.M1", spec, 2);
    EXPECT_TRUE(ap->associate("dev.M1").ok());
    dev->power_on();
    // Viewer: the experimenter's browser, co-located (1 ms RTT like §4.2).
    net.add_link("viewer", "ctrl",
                 net::LinkSpec::symmetric(Duration::micros(500), 100.0));
  }
  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<controller::Controller> ctrl;
  std::unique_ptr<net::WifiAccessPoint> ap;
  std::unique_ptr<device::AndroidDevice> dev;
};

// -------------------------------------------------------------- scrcpy ----

TEST_F(MirrorFixture, ScrcpyRequiresApi21) {
  device::DeviceSpec old_spec;
  old_spec.serial = "OLD";
  old_spec.api_level = 19;  // KitKat
  device::AndroidDevice old_dev{sim, net, "dev.OLD", old_spec, 4};
  old_dev.power_on();
  ScrcpyServer server{old_dev, "ctrl", kFrameSinkPort};
  const auto st = server.start();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::ErrorCode::kUnsupported);
}

TEST_F(MirrorFixture, ScrcpyRequiresPoweredDevice) {
  dev->power_off();
  ScrcpyServer server{*dev, "ctrl", kFrameSinkPort};
  EXPECT_FALSE(server.start().ok());
}

TEST_F(MirrorFixture, ScrcpyStreamsFramesAndRaisesPower) {
  const double before = dev->demand_ma();
  ScrcpyServer server{*dev, "ctrl", kFrameSinkPort};
  std::uint64_t frames = 0;
  net.listen({"ctrl", kFrameSinkPort}, [&](const net::Message& m) {
    if (m.tag == "scrcpy.frame") ++frames;
  });
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(dev->encoder_active());
  EXPECT_GT(dev->demand_ma(), before);
  sim.run_for(Duration::seconds(2));
  EXPECT_NEAR(static_cast<double>(frames), 20.0, 2.0);
  // The last frame may still be in flight at the window edge.
  EXPECT_GE(server.frames_sent(), frames);
  EXPECT_LE(server.frames_sent(), frames + 1);
  server.stop();
  EXPECT_FALSE(dev->encoder_active());
  const auto at_stop = server.frames_sent();
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(server.frames_sent(), at_stop) << "no frames after stop";
}

TEST_F(MirrorFixture, ScrcpyBytesTrackContentChange) {
  ScrcpyServer server{*dev, "ctrl", kFrameSinkPort};
  net.listen({"ctrl", kFrameSinkPort}, [](const net::Message&) {});
  ASSERT_TRUE(server.start());
  dev->screen().set_content_change_rate(0.02);
  sim.run_for(Duration::seconds(2));
  const auto quiet_bytes = server.bytes_sent();
  dev->screen().set_content_change_rate(0.60);
  sim.run_for(Duration::seconds(2));
  const auto busy_bytes = server.bytes_sent() - quiet_bytes;
  EXPECT_GT(busy_bytes, quiet_bytes * 3);
}

TEST_F(MirrorFixture, ScrcpyControlInjectsInput) {
  auto player = std::make_unique<device::VideoPlayerApp>(*dev);
  ASSERT_TRUE(dev->os().install(std::move(player)).ok());
  ASSERT_TRUE(dev->os().start_activity("com.example.videoplayer").ok());
  ScrcpyServer server{*dev, "ctrl", kFrameSinkPort};
  net.listen({"ctrl", kFrameSinkPort}, [](const net::Message&) {});
  ASSERT_TRUE(server.start());
  std::string hooked;
  server.set_control_hook([&](const std::string& cmd) { hooked = cmd; });
  net::Message control;
  control.src = {"ctrl", 999};
  control.dst = {"dev.M1", kScrcpyControlPort};
  control.tag = "scrcpy.control";
  control.payload = "input keyevent 3";
  ASSERT_TRUE(net.send(std::move(control)).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(hooked, "input keyevent 3");
  EXPECT_TRUE(dev->os().foreground_package().empty())
      << "HOME key must have been injected";
}

// --------------------------------------------------------------- novnc ----

TEST_F(MirrorFixture, NoVncRelaysCompressedFramesToViewer) {
  VncServer vnc;
  NoVncGateway gateway{net, vnc, "ctrl"};
  ASSERT_TRUE(gateway.connect_viewer({"viewer", 7000}).ok());
  EXPECT_FALSE(gateway.connect_viewer({"viewer", 7001}).ok())
      << "one viewer at a time";
  std::size_t got_bytes = 0;
  net.listen({"viewer", 7000},
             [&](const net::Message& m) { got_bytes = m.size(); });
  vnc.update({1, 10000, 0.5, sim.now()});
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(gateway.frames_relayed(), 1u);
  EXPECT_LT(got_bytes, 10000u * 0.7) << "noVNC compresses (§4.2)";
  ASSERT_TRUE(gateway.disconnect_viewer().ok());
  vnc.update({2, 10000, 0.5, sim.now()});
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(gateway.frames_relayed(), 1u) << "no viewer, no relay";
}

TEST_F(MirrorFixture, NoVncInputOnlyFromConnectedViewer) {
  VncServer vnc;
  NoVncGateway gateway{net, vnc, "ctrl"};
  std::string injected;
  gateway.set_input_injector([&](const std::string& cmd) { injected = cmd; });
  ASSERT_TRUE(gateway.connect_viewer({"viewer", 7000}).ok());

  net::Message evil;
  evil.src = {"viewer", 7999};  // different port = different client
  evil.dst = gateway.address();
  evil.tag = "novnc.input";
  evil.payload = "input tap 1 1";
  ASSERT_TRUE(net.send(std::move(evil)).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_TRUE(injected.empty()) << "input from non-viewer must be dropped";

  net::Message ok;
  ok.src = {"viewer", 7000};
  ok.dst = gateway.address();
  ok.tag = "novnc.input";
  ok.payload = "input tap 2 2";
  ASSERT_TRUE(net.send(std::move(ok)).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(injected, "input tap 2 2");
}

TEST_F(MirrorFixture, WsTextFrameReachesInjector) {
  VncServer vnc;
  NoVncGateway gateway{net, vnc, "ctrl"};
  std::string injected;
  gateway.set_input_injector([&](const std::string& cmd) { injected = cmd; });
  ASSERT_TRUE(gateway.connect_viewer({"viewer", 7000}).ok());

  net::Message msg;
  msg.src = {"viewer", 7000};
  msg.dst = gateway.address();
  msg.tag = "novnc.ws";
  msg.payload = encode_client_text("input tap 540 1200", 0xBEEF);
  ASSERT_TRUE(net.send(std::move(msg)).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(injected, "input tap 540 1200");
  EXPECT_EQ(gateway.bad_frames(), 0u);
}

TEST_F(MirrorFixture, WsMalformedFrameDisconnectsViewer) {
  VncServer vnc;
  NoVncGateway gateway{net, vnc, "ctrl"};
  std::string injected;
  gateway.set_input_injector([&](const std::string& cmd) { injected = cmd; });
  ASSERT_TRUE(gateway.connect_viewer({"viewer", 7000}).ok());

  // An unmasked client frame fails the connection (RFC 6455 §5.1).
  net::Message msg;
  msg.src = {"viewer", 7000};
  msg.dst = gateway.address();
  msg.tag = "novnc.ws";
  msg.payload = std::string{"\x81\x03"} + "abc";
  ASSERT_TRUE(net.send(std::move(msg)).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_TRUE(injected.empty());
  EXPECT_EQ(gateway.bad_frames(), 1u);
  EXPECT_FALSE(gateway.has_viewer()) << "malformed bytes must fail the "
                                        "connection, not be skipped";
}

TEST_F(MirrorFixture, WsPingIsAnsweredWithPong) {
  VncServer vnc;
  NoVncGateway gateway{net, vnc, "ctrl"};
  ASSERT_TRUE(gateway.connect_viewer({"viewer", 7000}).ok());

  std::string pong_payload;
  net.listen({"viewer", 7000}, [&](const net::Message& m) {
    if (m.tag != "novnc.ws") return;
    const auto frames = decode_ws_frame(m.payload);
    if (frames.ok() && frames.value().opcode == WsOpcode::kPong) {
      pong_payload = frames.value().payload;
    }
  });

  WsFrame ping;
  ping.opcode = WsOpcode::kPing;
  ping.masked = true;
  ping.mask_key = {1, 2, 3, 4};
  ping.payload = "hb-17";
  net::Message msg;
  msg.src = {"viewer", 7000};
  msg.dst = gateway.address();
  msg.tag = "novnc.ws";
  msg.payload = encode_ws_frame(ping);
  ASSERT_TRUE(net.send(std::move(msg)).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(gateway.pongs_sent(), 1u);
  EXPECT_EQ(pong_payload, "hb-17") << "pong must echo the ping payload";
  net.unlisten({"viewer", 7000});
}

TEST_F(MirrorFixture, WsCloseFrameDisconnects) {
  VncServer vnc;
  NoVncGateway gateway{net, vnc, "ctrl"};
  ASSERT_TRUE(gateway.connect_viewer({"viewer", 7000}).ok());

  WsFrame close;
  close.opcode = WsOpcode::kClose;
  close.masked = true;
  net::Message msg;
  msg.src = {"viewer", 7000};
  msg.dst = gateway.address();
  msg.tag = "novnc.ws";
  msg.payload = encode_ws_frame(close);
  ASSERT_TRUE(net.send(std::move(msg)).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_FALSE(gateway.has_viewer());
  EXPECT_EQ(gateway.bad_frames(), 0u) << "close is a clean shutdown";
}

TEST(WsFrameTest, ControlFrameLimits) {
  WsFrame ping;
  ping.opcode = WsOpcode::kPing;
  ping.masked = true;
  ping.payload = std::string(126, 'x');  // one over the control-frame cap
  const std::string wire = encode_ws_frame(ping);
  EXPECT_FALSE(decode_ws_frame(wire).ok());

  ping.payload.resize(125);
  EXPECT_TRUE(decode_ws_frame(encode_ws_frame(ping)).ok());
}

TEST(WsFrameTest, RejectsOversizedAndNonCanonicalLengths) {
  // 64-bit length above the payload cap never reaches an allocator.
  std::string huge{"\x81\xFF", 2};
  huge += std::string{"\x7F\xFF\xFF\xFF\xFF\xFF\xFF\xFF", 8};
  const auto r = decode_ws_frame(huge);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::ErrorCode::kInvalidArgument);

  // A 16-bit length that fits in 7 bits is non-canonical.
  std::string nonmin{"\x81\xFE\x00\x05", 4};
  nonmin += "hello";
  EXPECT_FALSE(decode_ws_frame(nonmin).ok());
}

TEST(WsFrameTest, TextFramesMustBeUtf8) {
  WsFrame text;
  text.opcode = WsOpcode::kText;
  text.payload = "\xC0\xAF";  // overlong encoding of '/'
  EXPECT_FALSE(decode_ws_frame(encode_ws_frame(text)).ok());
  text.payload = "\xF0\x9F\x94\x8B";  // U+1F50B BATTERY, legitimate
  EXPECT_TRUE(decode_ws_frame(encode_ws_frame(text)).ok());
}

TEST_F(MirrorFixture, ToolbarVisibilityToggle) {
  VncServer vnc;
  NoVncGateway gateway{net, vnc, "ctrl"};
  EXPECT_TRUE(gateway.toolbar_visible());
  gateway.set_toolbar_visible(false);  // experimenter hides it for testers
  EXPECT_FALSE(gateway.toolbar_visible());
}

// ------------------------------------------------------------- session ----

TEST_F(MirrorFixture, SessionRegistersControllerServices) {
  MirroringSession session{*ctrl, *dev};
  auto& res = ctrl->resources();
  const double idle_cpu = res.cpu_utilization();
  ASSERT_TRUE(session.start().ok());
  EXPECT_TRUE(res.has_service("scrcpy-recv"));
  EXPECT_TRUE(res.has_service("vnc"));
  EXPECT_TRUE(res.has_service("novnc"));
  EXPECT_GT(res.cpu_utilization(), idle_cpu);
  session.stop();
  EXPECT_FALSE(res.has_service("vnc"));
}

TEST_F(MirrorFixture, SessionDoubleStartRejected) {
  MirroringSession session{*ctrl, *dev};
  ASSERT_TRUE(session.start().ok());
  EXPECT_FALSE(session.start().ok());
}

TEST_F(MirrorFixture, SessionReceivesStream) {
  MirroringSession session{*ctrl, *dev};
  ASSERT_TRUE(session.start().ok());
  dev->screen().set_content_change_rate(0.6);
  sim.run_for(Duration::seconds(3));
  EXPECT_GT(session.frames_received(), 20u);
  EXPECT_GT(session.bytes_received(), 100'000u);
  EXPECT_GT(session.vnc().version(), 20u);
}

TEST_F(MirrorFixture, SessionMemoryFootprintMatchesPaper) {
  // §4.2: mirroring adds ~6% of the Pi's 1 GB; total stays under 20%.
  auto& res = ctrl->resources();
  const double before_mb = res.ram_used_mb();
  MirroringSession session{*ctrl, *dev};
  ASSERT_TRUE(session.start().ok());
  const double delta_fraction = (res.ram_used_mb() - before_mb) / 1024.0;
  EXPECT_NEAR(delta_fraction, 0.06, 0.04);
  EXPECT_LT(res.ram_fraction(), 0.20);
}

TEST_F(MirrorFixture, LatencyProbeLandsNearPaperValue) {
  // §4.2: 1.44 ± 0.12 s over 40 co-located trials.
  auto player = std::make_unique<device::VideoPlayerApp>(*dev);
  ASSERT_TRUE(dev->os().install(std::move(player)).ok());
  ASSERT_TRUE(dev->os().start_activity("com.example.videoplayer").ok());
  MirroringSession session{*ctrl, *dev};
  ASSERT_TRUE(session.start().ok());
  ASSERT_TRUE(session.attach_viewer({"viewer", 7100}).ok());
  util::RunningStats stats;
  for (int i = 0; i < 40; ++i) {
    auto latency = session.measure_latency_sync({"viewer", 7100}, 540, 900);
    ASSERT_TRUE(latency.ok()) << latency.error().str();
    stats.add(latency.value().to_seconds());
    sim.run_for(Duration::seconds(1));
  }
  EXPECT_NEAR(stats.mean(), 1.44, 0.15);
  EXPECT_NEAR(stats.stddev(), 0.12, 0.09);
}

TEST_F(MirrorFixture, LatencyProbeFailsWhenInactive) {
  MirroringSession session{*ctrl, *dev};
  EXPECT_FALSE(session.measure_latency_sync({"viewer", 7100}, 1, 1).ok());
}

TEST_F(MirrorFixture, StopTearsDownDeviceSide) {
  MirroringSession session{*ctrl, *dev};
  ASSERT_TRUE(session.start().ok());
  EXPECT_NE(dev->processes().find_by_name("scrcpy-server"), nullptr);
  EXPECT_TRUE(dev->encoder_active());
  session.stop();
  EXPECT_EQ(dev->processes().find_by_name("scrcpy-server"), nullptr);
  EXPECT_FALSE(dev->encoder_active());
}

}  // namespace
}  // namespace blab::mirror
