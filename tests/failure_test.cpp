// Failure injection and robustness tests: the platform must degrade the way
// real hardware does — brown-outs, lost mains, lossy control links, dropped
// WiFi — and recover cleanly. Plus trace export/import round-trips.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "analysis/trace_io.hpp"
#include "api/batterylab_api.hpp"
#include "device/android.hpp"
#include "device/video_player.hpp"
#include "net/ssh.hpp"
#include "util/stats.hpp"

namespace blab {
namespace {

using util::Duration;

class FailureFixture : public ::testing::Test {
 protected:
  FailureFixture() : net{sim, 4242} {
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(Duration::millis(4), 900.0));
    vp = std::make_unique<api::VantagePoint>(sim, net);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(Duration::millis(6), 200.0));
    device::DeviceSpec spec;
    spec.serial = "J7DUO-1";
    dev = vp->add_device(spec).value();
    api = std::make_unique<api::BatteryLabApi>(*vp);
  }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<api::VantagePoint> vp;
  device::AndroidDevice* dev = nullptr;
  std::unique_ptr<api::BatteryLabApi> api;
};

// ----------------------------------------------------------- brown-outs ----

TEST_F(FailureFixture, BatteryDepletionShutsTheDeviceDown) {
  // Give the phone a nearly-dead pack and cut USB charging.
  dev->battery().set_soc(0.002);  // ~6 mAh left
  ASSERT_TRUE(vp->usb_hub().set_port_power_for(dev->host(), false).ok());
  vp->refresh_usb_power();
  // Idle draw ~100+ mA drains 6 mAh within a few minutes.
  sim.run_for(Duration::minutes(10));
  dev->recompute_power();
  EXPECT_FALSE(dev->powered_on()) << "drained pack must shut the phone down";
  EXPECT_TRUE(dev->battery().depleted());

  // Recovery: restore USB charge, let it charge, boot.
  ASSERT_TRUE(vp->usb_hub().set_port_power_for(dev->host(), true).ok());
  vp->refresh_usb_power();
  dev->battery().charge(500.0);
  dev->power_on();
  EXPECT_TRUE(dev->powered_on());
}

TEST_F(FailureFixture, UsbChargingPreventsDepletion) {
  dev->battery().set_soc(0.002);
  // USB port stays powered: the 450 mA charge covers the idle draw.
  sim.run_for(Duration::minutes(10));
  dev->recompute_power();
  EXPECT_TRUE(dev->powered_on());
}

TEST_F(FailureFixture, MainsLossMidMeasurementIsSurfacedAndRecoverable) {
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  ASSERT_TRUE(api->start_monitor("J7DUO-1").ok());
  sim.run_for(Duration::seconds(5));
  // Someone (or a buggy safety job) cuts the Monsoon's socket mid-capture.
  ASSERT_TRUE(vp->power_socket().turn_off().ok());
  EXPECT_FALSE(vp->monitor().capturing());
  auto capture = api->stop_monitor();
  EXPECT_FALSE(capture.ok()) << "the aborted capture is not silently empty";
  // stop_monitor still restored battery + USB for the device.
  EXPECT_EQ(dev->power_source(), device::PowerSource::kBattery);
  EXPECT_GT(vp->usb_hub().charge_current_ma(dev->host()), 0.0);
  // And the next measurement works after power returns.
  ASSERT_TRUE(vp->power_socket().turn_on().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  auto retry = api->run_monitor("J7DUO-1", Duration::seconds(2));
  EXPECT_TRUE(retry.ok());
}

// ------------------------------------------------------ degraded links ----

TEST_F(FailureFixture, WifiDisassociationBreaksMeasurementAutomation) {
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  ASSERT_TRUE(api->start_monitor("J7DUO-1").ok());
  // During the measurement USB is down; now WiFi drops too.
  net::Link* wifi = net.find_link(vp->controller_host(), dev->host(), "wifi");
  ASSERT_NE(wifi, nullptr);
  wifi->set_enabled(false);
  auto out = api->execute_adb("J7DUO-1", "whoami");
  EXPECT_FALSE(out.ok()) << "no transport should mean an error, not a hang";
  wifi->set_enabled(true);
  auto retry = api->execute_adb("J7DUO-1", "whoami");
  EXPECT_TRUE(retry.ok());
  (void)api->stop_monitor();
}

TEST_F(FailureFixture, SshOverLossyLinkEventuallyTimesOutCleanly) {
  net::SshServer server{net, "lossy-server"};
  const auto key = net::SshKeyPair::generate("alice");
  server.authorize_key(key.public_key);
  net::LinkSpec awful = net::LinkSpec::symmetric(Duration::millis(20), 10.0);
  awful.loss_rate = 1.0;  // blackhole
  net.add_link("lossy-server", "client-host", awful);
  net::SshClient client{net, "client-host", key};
  auto result = client.exec_sync(server.address(), "uptime",
                                 Duration::seconds(3));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::ErrorCode::kTimeout);
}

// ------------------------------------------------- capture artifacts -----

TEST_F(FailureFixture, RelaySwitchMidCaptureShowsTransient) {
  // Direct-wire a second load scenario: capture while flipping the OTHER
  // channel; the board-level transient bleeds into the measurement.
  device::DeviceSpec second;
  second.serial = "J7DUO-2";
  ASSERT_TRUE(vp->add_device(second).ok());
  // Cut device 2's USB so its full draw lands on the supply rail.
  ASSERT_TRUE(vp->usb_hub().set_port_power_for("dev.J7DUO-2", false).ok());
  vp->refresh_usb_power();
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  ASSERT_TRUE(api->start_monitor("J7DUO-1").ok());
  sim.run_for(Duration::seconds(2));
  const auto idle_ma = dev->demand_ma();
  // Flip device 2's relay to bypass mid-capture: its draw joins the channel.
  ASSERT_TRUE(vp->switch_power("J7DUO-2", hw::RelayPosition::kBypass).ok());
  sim.run_for(Duration::seconds(2));
  auto capture = api->stop_monitor();
  ASSERT_TRUE(capture.ok());
  const auto cdf = capture.value().current_cdf();
  // Second half of the capture carries both devices.
  EXPECT_GT(cdf.max(), idle_ma * 1.5);
}

// ------------------------------------------------------------ trace IO ----

TEST_F(FailureFixture, CaptureCsvRoundTrip) {
  auto player = std::make_unique<device::VideoPlayerApp>(*dev);
  auto* p = player.get();
  ASSERT_TRUE(dev->os().install(std::move(player)).ok());
  ASSERT_TRUE(dev->os().start_activity(p->package()).ok());
  ASSERT_TRUE(p->play("/sdcard/video.mp4").ok());
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  auto capture = api->run_monitor("J7DUO-1", Duration::seconds(2));
  ASSERT_TRUE(capture.ok());

  std::stringstream ss;
  analysis::write_capture_csv(capture.value(), ss);
  auto loaded = analysis::read_capture_csv_stream(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.error().str();
  EXPECT_EQ(loaded.value().sample_count(), capture.value().sample_count());
  EXPECT_NEAR(loaded.value().sample_hz(), capture.value().sample_hz(), 1.0);
  EXPECT_NEAR(loaded.value().mean_current_ma(),
              capture.value().mean_current_ma(), 0.01);
  EXPECT_NEAR(loaded.value().voltage(), 3.85, 0.01);
}

TEST_F(FailureFixture, CaptureCsvStrideDecimates) {
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.85).ok());
  auto capture = api->run_monitor("J7DUO-1", Duration::seconds(1));
  ASSERT_TRUE(capture.ok());
  std::stringstream ss;
  analysis::write_capture_csv(capture.value(), ss, /*stride=*/10);
  auto loaded = analysis::read_capture_csv_stream(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().sample_count(),
            capture.value().sample_count() / 10);
  EXPECT_NEAR(loaded.value().sample_hz(), 500.0, 1.0);
}

TEST(TraceIoTest, StrideMarkerRecoversExactRate) {
  // 4800 Hz decimated by 7 leaves an effective rate of 685.714286 Hz whose
  // sample period (0.00145833... s) does not survive the CSV's 6-decimal
  // timestamps — recovering the rate from row spacing alone would drift to
  // ~685.87 Hz. The "# effective_hz=" marker the writer emits for strided
  // exports keeps the recovery exact.
  std::vector<float> samples(4800);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = 100.0f + static_cast<float>(i % 17);
  }
  const hw::Capture original{util::TimePoint::epoch(), 4800.0, 3.85,
                             std::move(samples)};
  std::stringstream ss;
  analysis::write_capture_csv(original, ss, /*stride=*/7);
  EXPECT_NE(ss.str().find("# effective_hz=685.714286"), std::string::npos)
      << "strided export is missing the rate marker";
  auto loaded = analysis::read_capture_csv_stream(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().sample_count(), 686u);  // ceil(4800 / 7)
  EXPECT_DOUBLE_EQ(loaded.value().sample_hz(), 685.714286);
}

TEST(TraceIoTest, MalformedRateMarkerRejected) {
  {
    std::stringstream ss{
        "time_s,current_mA,voltage\n"
        "# effective_hz=abc source_hz=4800 stride=7\n"
        "0.000000,100.000,3.850\n"
        "0.001458,101.000,3.850\n"};
    EXPECT_FALSE(analysis::read_capture_csv_stream(ss).ok());
  }
  {
    std::stringstream ss{
        "time_s,current_mA,voltage\n"
        "# effective_hz=-500.0 source_hz=4800 stride=7\n"
        "0.000000,100.000,3.850\n"
        "0.001458,101.000,3.850\n"};
    EXPECT_FALSE(analysis::read_capture_csv_stream(ss).ok());
  }
}

TEST(TraceIoTest, MalformedCsvRejected) {
  {
    std::stringstream ss{"nonsense\n1,2,3\n"};
    EXPECT_FALSE(analysis::read_capture_csv_stream(ss).ok());
  }
  {
    std::stringstream ss{"time_s,current_mA,voltage\n0.0,abc,3.85\n"};
    EXPECT_FALSE(analysis::read_capture_csv_stream(ss).ok());
  }
  {
    std::stringstream ss{"time_s,current_mA,voltage\n0.0,1.0\n"};
    EXPECT_FALSE(analysis::read_capture_csv_stream(ss).ok());
  }
  {
    std::stringstream ss{"time_s,current_mA,voltage\n"};
    EXPECT_FALSE(analysis::read_capture_csv_stream(ss).ok())
        << "empty capture";
  }
  EXPECT_FALSE(analysis::read_capture_csv("/nonexistent/file.csv").ok());
}

TEST(TraceIoTest, SummaryMentionsKeyNumbers) {
  hw::Capture capture{util::TimePoint::epoch(), 5000.0, 3.85,
                      std::vector<float>(5000, 160.0f)};
  const std::string summary = analysis::capture_summary(capture);
  EXPECT_NE(summary.find("5000 samples"), std::string::npos);
  EXPECT_NE(summary.find("160.0 mA"), std::string::npos);
  EXPECT_NE(summary.find("3.85 V"), std::string::npos);
}

}  // namespace
}  // namespace blab
