// Unit tests for the device substrate: process table, CPU model, screen,
// radios, Android OS + shell surface, the device power pipeline, the web
// catalog, browsers, video player, and ADB.
#include <gtest/gtest.h>

#include <memory>

#include "device/adb.hpp"
#include "device/android.hpp"
#include "device/browser.hpp"
#include "device/device.hpp"
#include "device/video_player.hpp"
#include "device/web_content.hpp"
#include "util/stats.hpp"
#include "net/usb.hpp"
#include "net/wifi.hpp"

namespace blab::device {
namespace {

using util::Duration;
using util::TimePoint;

// ------------------------------------------------------------- process ----

TEST(ProcessTableTest, SpawnKillLookup) {
  ProcessTable table;
  const Pid a = table.spawn("com.foo", 0.1, 0.0);
  const Pid b = table.spawn("com.bar", 0.2, 0.0);
  EXPECT_EQ(table.count(), 2u);
  EXPECT_NE(a, b);
  EXPECT_NE(table.find(a), nullptr);
  EXPECT_EQ(table.find_by_name("com.bar")->pid, b);
  EXPECT_TRUE(table.kill(a));
  EXPECT_FALSE(table.kill(a));
  EXPECT_EQ(table.count(), 1u);
}

TEST(ProcessTableTest, TotalDemandClampsAtOne) {
  ProcessTable table;
  table.spawn("a", 0.7, 0.0);
  table.spawn("b", 0.8, 0.0);
  EXPECT_DOUBLE_EQ(table.total_demand(), 1.0);
}

TEST(ProcessTableTest, RedrawJittersAroundBase) {
  ProcessTable table;
  const Pid p = table.spawn("a", 0.3, 0.2);
  util::Rng rng{5};
  util::RunningStats stats;
  for (int i = 0; i < 2000; ++i) {
    table.redraw(rng);
    stats.add(table.find(p)->current_demand);
  }
  EXPECT_NEAR(stats.mean(), 0.3, 0.01);
  EXPECT_GT(stats.stddev(), 0.03);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(ProcessTableTest, ZeroJitterIsDeterministic) {
  ProcessTable table;
  const Pid p = table.spawn("a", 0.25, 0.0);
  util::Rng rng{5};
  table.redraw(rng);
  EXPECT_DOUBLE_EQ(table.find(p)->current_demand, 0.25);
}

TEST(ProcessTableTest, KillByName) {
  ProcessTable table;
  table.spawn("dup", 0.1, 0.0);
  table.spawn("dup", 0.1, 0.0);
  table.spawn("other", 0.1, 0.0);
  EXPECT_EQ(table.kill_by_name("dup"), 2);
  EXPECT_EQ(table.count(), 1u);
}

// ----------------------------------------------------------------- cpu ----

TEST(CpuModelTest, CurrentSuperLinearInUtil) {
  PowerProfile p;
  const double at20 = CpuModel::current_ma(p, 0.20);
  const double at40 = CpuModel::current_ma(p, 0.40);
  EXPECT_GT(at40, 2.0 * at20) << "DVFS makes high load disproportionately "
                                 "expensive";
  EXPECT_DOUBLE_EQ(CpuModel::current_ma(p, 0.0), 0.0);
  EXPECT_NEAR(CpuModel::current_ma(p, 1.0), p.cpu_full_load_ma, 1e-9);
}

TEST(CpuModelTest, UtilizationTimelineRecords) {
  CpuModel cpu;
  cpu.set_utilization(TimePoint::epoch(), 0.1);
  cpu.set_utilization(TimePoint::epoch() + Duration::seconds(1), 0.5);
  EXPECT_DOUBLE_EQ(
      cpu.utilization(TimePoint::epoch() + Duration::millis(500)), 0.1);
  EXPECT_DOUBLE_EQ(cpu.current_utilization(), 0.5);
}

// -------------------------------------------------------------- screen ----

TEST(ScreenTest, PowerScalesWithBrightness) {
  PowerProfile p;
  Screen screen;
  EXPECT_EQ(screen.current_ma(p), 0.0) << "screen off draws nothing";
  screen.set_on(true);
  screen.set_brightness(0.0);
  const double dim = screen.current_ma(p);
  screen.set_brightness(1.0);
  const double bright = screen.current_ma(p);
  EXPECT_DOUBLE_EQ(dim, p.screen_base_ma);
  EXPECT_DOUBLE_EQ(bright, p.screen_base_ma + p.screen_brightness_ma);
}

TEST(ScreenTest, ChangeRateZeroWhenOff) {
  Screen screen;
  screen.set_content_change_rate(0.6);
  EXPECT_EQ(screen.content_change_rate(), 0.0);
  screen.set_on(true);
  EXPECT_DOUBLE_EQ(screen.content_change_rate(), 0.6);
}

// --------------------------------------------------------------- radio ----

TEST(RadioTest, WifiDrawScalesWithThroughput) {
  PowerProfile p;
  Radio wifi{RadioKind::kWifi};
  EXPECT_EQ(wifi.current_ma(p), 0.0) << "disabled radio draws nothing";
  wifi.set_enabled(true);
  EXPECT_DOUBLE_EQ(wifi.current_ma(p), p.wifi_idle_ma);
  wifi.begin_activity(10.0);
  EXPECT_DOUBLE_EQ(wifi.current_ma(p),
                   p.wifi_active_ma + 10.0 * p.wifi_per_mbps_ma);
  wifi.end_activity(10.0);
  EXPECT_DOUBLE_EQ(wifi.current_ma(p), p.wifi_idle_ma);
}

TEST(RadioTest, OverlappingActivityRefCounts) {
  PowerProfile p;
  Radio wifi{RadioKind::kWifi};
  wifi.set_enabled(true);
  wifi.begin_activity(5.0);
  wifi.begin_activity(3.0);
  EXPECT_DOUBLE_EQ(wifi.throughput_mbps(), 8.0);
  wifi.end_activity(5.0);
  EXPECT_TRUE(wifi.active());
  wifi.end_activity(3.0);
  EXPECT_FALSE(wifi.active());
  EXPECT_DOUBLE_EQ(wifi.throughput_mbps(), 0.0);
}

TEST(RadioTest, DisableResetsActivity) {
  PowerProfile p;
  Radio bt{RadioKind::kBluetooth};
  bt.set_enabled(true);
  bt.begin_activity(0.5);
  bt.set_enabled(false);
  EXPECT_FALSE(bt.active());
  bt.end_activity(0.5);  // must not underflow
  EXPECT_FALSE(bt.active());
}

TEST(RadioTest, CellularCostsMoreThanWifi) {
  PowerProfile p;
  Radio wifi{RadioKind::kWifi};
  Radio cell{RadioKind::kCellular};
  wifi.set_enabled(true);
  cell.set_enabled(true);
  wifi.begin_activity(5.0);
  cell.begin_activity(5.0);
  EXPECT_GT(cell.current_ma(p), wifi.current_ma(p));
}

// ----------------------------------------------------- device fixture ----

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() : net{sim, 3} {
    DeviceSpec spec;
    spec.serial = "TEST1";
    dev = std::make_unique<AndroidDevice>(sim, net, "dev.TEST1", spec, 77);
  }
  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<AndroidDevice> dev;
};

TEST_F(DeviceTest, OffDeviceDrawsNothing) {
  EXPECT_EQ(dev->demand_ma(), 0.0);
  dev->recompute_power();
  EXPECT_EQ(dev->current_ma(sim.now()), 0.0);
}

TEST_F(DeviceTest, BootRaisesBaseline) {
  dev->power_on();
  EXPECT_TRUE(dev->powered_on());
  const double ma = dev->demand_ma();
  // idle + screen-on + system processes + radios idle.
  EXPECT_GT(ma, 80.0);
  EXPECT_LT(ma, 200.0);
  EXPECT_GT(dev->processes().count(), 0u);
}

TEST_F(DeviceTest, PowerOffTearsEverythingDown) {
  dev->power_on();
  dev->power_off();
  EXPECT_FALSE(dev->powered_on());
  EXPECT_EQ(dev->processes().count(), 0u);
  EXPECT_EQ(dev->demand_ma(), 0.0);
  EXPECT_FALSE(dev->wifi().enabled());
}

TEST_F(DeviceTest, UsbChargeOffsetsSupplyDraw) {
  dev->power_on();
  sim.run_for(Duration::millis(10));
  const double demand = dev->demand_ma();
  dev->set_usb_charge_ma(net::kUsbChargeCurrentMa);
  // Demand exceeds typical idle? The J7's idle demand is < 450 mA, so the
  // supply draw should clamp to zero — exactly the interference the paper
  // avoids by cutting USB power.
  ASSERT_LT(demand, net::kUsbChargeCurrentMa);
  EXPECT_EQ(dev->current_ma(sim.now()), 0.0);
  dev->set_usb_charge_ma(0.0);
  EXPECT_NEAR(dev->current_ma(sim.now()), dev->demand_ma(), 1e-9);
}

TEST_F(DeviceTest, SupplyTimelineTracksStateChanges) {
  dev->power_on();
  sim.run_for(Duration::seconds(1));
  const double before = dev->current_ma(sim.now());
  dev->set_decoder_active(true);
  const double after = dev->current_ma(sim.now());
  EXPECT_NEAR(after - before, dev->spec().power.video_decoder_ma, 1e-9);
  // The past is not rewritten.
  EXPECT_NEAR(dev->current_ma(sim.now() - Duration::millis(500)), before,
              35.0);
}

TEST_F(DeviceTest, BatteryDrainsOnlyOnBatteryPower) {
  dev->power_on();
  const double soc0 = dev->battery().soc();
  sim.run_for(Duration::minutes(10));
  dev->recompute_power();
  const double soc1 = dev->battery().soc();
  EXPECT_LT(soc1, soc0);

  dev->set_power_source(PowerSource::kMonitorBypass);
  sim.run_for(Duration::minutes(10));
  dev->recompute_power();
  EXPECT_DOUBLE_EQ(dev->battery().soc(), soc1)
      << "bypass means the Monsoon powers the phone";
}

TEST_F(DeviceTest, JitterCreatesCpuVariance) {
  dev->power_on();
  dev->processes().spawn("busy", 0.3, 0.4);
  util::RunningStats stats;
  for (int i = 0; i < 200; ++i) {
    sim.run_for(Duration::millis(150));
    stats.add(dev->cpu().current_utilization());
  }
  EXPECT_GT(stats.stddev(), 0.02);
  EXPECT_NEAR(stats.mean(), 0.33, 0.05);
}

// ---------------------------------------------------------- android os ----

class OsTest : public DeviceTest {
 protected:
  void SetUp() override {
    dev->power_on();
    ASSERT_TRUE(dev->os()
                    .install(std::make_unique<Browser>(
                        *dev, BrowserProfile::brave()))
                    .ok());
  }
};

TEST_F(OsTest, InstallStartStop) {
  auto& os = dev->os();
  EXPECT_NE(os.app("com.brave.browser"), nullptr);
  EXPECT_FALSE(os.install(std::make_unique<Browser>(
                              *dev, BrowserProfile::brave()))
                   .ok())
      << "duplicate install";
  ASSERT_TRUE(os.start_activity("com.brave.browser").ok());
  EXPECT_EQ(os.foreground_package(), "com.brave.browser");
  EXPECT_TRUE(os.app("com.brave.browser")->running());
  ASSERT_TRUE(os.force_stop("com.brave.browser").ok());
  EXPECT_TRUE(os.foreground_package().empty());
}

TEST_F(OsTest, StartUnknownPackageFails) {
  EXPECT_FALSE(dev->os().start_activity("com.nope").ok());
}

TEST_F(OsTest, InputRequiresForegroundApp) {
  EXPECT_FALSE(dev->os().input_text("x").ok());
  ASSERT_TRUE(dev->os().start_activity("com.brave.browser").ok());
  EXPECT_TRUE(dev->os().input_text("x").ok());
}

TEST_F(OsTest, HomeKeyClearsForeground) {
  ASSERT_TRUE(dev->os().start_activity("com.brave.browser").ok());
  ASSERT_TRUE(dev->os().input_keyevent(kKeycodeHome).ok());
  EXPECT_TRUE(dev->os().foreground_package().empty());
}

TEST_F(OsTest, ShellAmPmCommands) {
  auto& os = dev->os();
  auto out = os.execute_shell("pm list packages");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("package:com.brave.browser"), std::string::npos);

  EXPECT_TRUE(os.execute_shell("am start com.brave.browser").ok());
  EXPECT_EQ(os.foreground_package(), "com.brave.browser");
  EXPECT_TRUE(os.execute_shell("am force-stop com.brave.browser").ok());
  EXPECT_TRUE(os.execute_shell("pm clear com.brave.browser").ok());
}

TEST_F(OsTest, ShellInputCommands) {
  auto& os = dev->os();
  ASSERT_TRUE(os.execute_shell("am start com.brave.browser").ok());
  EXPECT_TRUE(os.execute_shell("input text hello").ok());
  EXPECT_TRUE(os.execute_shell("input keyevent 66").ok());
  EXPECT_TRUE(os.execute_shell("input swipe 540 1200 540 600").ok());
  EXPECT_TRUE(os.execute_shell("input tap 100 200").ok());
  EXPECT_FALSE(os.execute_shell("input bogus").ok());
}

TEST_F(OsTest, ShellDumpsysAndProps) {
  auto& os = dev->os();
  auto batt = os.execute_shell("dumpsys battery");
  ASSERT_TRUE(batt.ok());
  EXPECT_NE(batt.value().find("level: 100"), std::string::npos);
  auto cpu = os.execute_shell("dumpsys cpuinfo");
  ASSERT_TRUE(cpu.ok());
  EXPECT_NE(cpu.value().find("Load:"), std::string::npos);
  auto sdk = os.execute_shell("getprop ro.build.version.sdk");
  ASSERT_TRUE(sdk.ok());
  EXPECT_EQ(sdk.value(), "26");
  EXPECT_EQ(os.execute_shell("whoami").value(), "shell");
}

TEST_F(OsTest, LogcatBufferAndClear) {
  auto& os = dev->os();
  os.log("TestTag", "event-42");
  auto dump = os.execute_shell("logcat");
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump.value().find("event-42"), std::string::npos);
  ASSERT_TRUE(os.execute_shell("logcat -c").ok());
  EXPECT_EQ(os.logcat_lines(), 0u);
}

TEST_F(OsTest, SettingsRoundTrip) {
  auto& os = dev->os();
  ASSERT_TRUE(os.execute_shell("settings put secure foo 1").ok());
  EXPECT_EQ(os.execute_shell("settings get secure foo").value(), "1");
  EXPECT_EQ(os.execute_shell("settings get secure missing").value(), "null");
}

TEST_F(OsTest, UnknownCommandRejected) {
  EXPECT_FALSE(dev->os().execute_shell("rm -rf /").ok());
  EXPECT_FALSE(dev->os().execute_shell("").ok());
}

// --------------------------------------------------------- web catalog ----

TEST(WebCatalogTest, TenNewsSites) {
  const auto& catalog = WebCatalog::news_sites();
  EXPECT_EQ(catalog.pages().size(), 10u);
  EXPECT_NE(catalog.find("news-a.example"), nullptr);
  EXPECT_EQ(catalog.find("nope.example"), nullptr);
}

TEST(WebCatalogTest, AdBlockingCutsBytes) {
  const auto& page = WebCatalog::news_sites().pages()[0];
  const auto full = WebCatalog::page_bytes(page, "", false, false);
  const auto blocked = WebCatalog::page_bytes(page, "", true, false);
  EXPECT_LT(blocked, full);
  EXPECT_GT(blocked, page.content_bytes);  // some promo survives
}

TEST(WebCatalogTest, JapanServesSmallerAdsAbout20Percent) {
  // §4.3: Chrome's traffic dropped ~20% through the Japan VPN.
  const auto& catalog = WebCatalog::news_sites();
  std::size_t home = 0, japan = 0;
  for (const auto& page : catalog.pages()) {
    home += WebCatalog::page_bytes(page, "", false, false);
    japan += WebCatalog::page_bytes(page, "Japan", false, false);
  }
  const double drop = 1.0 - static_cast<double>(japan) / home;
  EXPECT_NEAR(drop, 0.20, 0.04);
}

TEST(WebCatalogTest, LitePagesDefaultRegions) {
  EXPECT_TRUE(WebCatalog::lite_pages_default_on("South Africa"));
  EXPECT_TRUE(WebCatalog::lite_pages_default_on("Japan"));
  EXPECT_FALSE(WebCatalog::lite_pages_default_on(""));
  EXPECT_FALSE(WebCatalog::lite_pages_default_on("CA, USA"));
}

TEST(WebCatalogTest, LitePagesShrinkContent) {
  const auto& page = WebCatalog::news_sites().pages()[0];
  const auto normal = WebCatalog::page_bytes(page, "", false, false);
  const auto lite = WebCatalog::page_bytes(page, "", false, true);
  EXPECT_LT(lite, normal);
}

// ------------------------------------------------------------- browser ----

class BrowserTest : public ::testing::Test {
 protected:
  BrowserTest() : net{sim, 9} {
    net.add_host("web");
    DeviceSpec spec;
    spec.serial = "B1";
    dev = std::make_unique<AndroidDevice>(sim, net, "dev.B1", spec, 3);
    net.add_link("web", "dev.B1",
                 net::LinkSpec::symmetric(Duration::millis(10), 40.0));
    dev->power_on();
  }

  /// Install + launch + complete first-run, like the workload's setup phase.
  Browser* install(const BrowserProfile& profile) {
    auto browser = std::make_unique<Browser>(*dev, profile);
    Browser* ptr = browser.get();
    EXPECT_TRUE(dev->os().install(std::move(browser)).ok());
    EXPECT_TRUE(dev->os().start_activity(profile.package).ok());
    ptr->on_tap(540, 1700);
    ptr->on_tap(540, 1700);
    return ptr;
  }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<AndroidDevice> dev;
};

TEST_F(BrowserTest, ProfilesExistAndDiffer) {
  ASSERT_EQ(BrowserProfile::all().size(), 4u);
  EXPECT_TRUE(BrowserProfile::brave().blocks_ads);
  EXPECT_FALSE(BrowserProfile::chrome().blocks_ads);
  EXPECT_TRUE(BrowserProfile::chrome().supports_lite_pages);
  EXPECT_LT(BrowserProfile::brave().load_cpu,
            BrowserProfile::firefox().load_cpu);
  EXPECT_NE(BrowserProfile::find("Chrome"), nullptr);
  EXPECT_NE(BrowserProfile::find("org.mozilla.firefox"), nullptr);
  EXPECT_EQ(BrowserProfile::find("NetscapeNavigator"), nullptr);
}

TEST_F(BrowserTest, FirstRunGatesNavigation) {
  auto browser = std::make_unique<Browser>(*dev, BrowserProfile::chrome());
  Browser* b = browser.get();
  ASSERT_TRUE(dev->os().install(std::move(browser)).ok());
  ASSERT_TRUE(dev->os().start_activity(b->package()).ok());
  EXPECT_FALSE(b->first_run_complete());
  EXPECT_FALSE(b->navigate("news-a.example").ok());
  b->on_tap(540, 1700);
  b->on_tap(540, 1700);
  EXPECT_TRUE(b->first_run_complete());
  EXPECT_TRUE(b->navigate("news-a.example").ok());
}

TEST_F(BrowserTest, PageLoadMovesBytesAndRaisesCpu) {
  Browser* b = install(BrowserProfile::chrome());
  b->on_tap(0, 0);
  b->on_tap(0, 0);
  const double idle_util = dev->processes().total_demand();
  ASSERT_TRUE(b->navigate("news-a.example").ok());
  EXPECT_TRUE(b->page_loading());
  EXPECT_GT(dev->processes().total_demand(), idle_util);
  EXPECT_TRUE(dev->wifi().active());
  sim.run_for(Duration::seconds(10));
  EXPECT_FALSE(b->page_loading());
  EXPECT_EQ(b->pages_loaded(), 1u);
  EXPECT_GT(b->bytes_fetched(), 2000u * 1024);
  EXPECT_FALSE(dev->wifi().active());
  ASSERT_EQ(b->page_load_times().size(), 1u);
  EXPECT_GT(b->page_load_times()[0], Duration::millis(300));
  EXPECT_LT(b->page_load_times()[0], Duration::seconds(6));
}

TEST_F(BrowserTest, UrlBarTypeAndEnterNavigates) {
  Browser* b = install(BrowserProfile::brave());
  b->on_text("news-b.example");
  b->on_key(kKeycodeEnter);
  EXPECT_TRUE(b->page_loading());
  sim.run_for(Duration::seconds(10));
  EXPECT_EQ(b->pages_loaded(), 1u);
}

TEST_F(BrowserTest, AdBlockingFetchesLess) {
  Browser* brave = install(BrowserProfile::brave());
  ASSERT_TRUE(brave->navigate("news-a.example").ok());
  sim.run_for(Duration::seconds(10));
  const auto brave_bytes = brave->bytes_fetched();
  (void)dev->os().force_stop(brave->package());

  Browser* chrome = install(BrowserProfile::chrome());
  chrome->on_tap(0, 0);
  chrome->on_tap(0, 0);
  ASSERT_TRUE(chrome->navigate("news-a.example").ok());
  sim.run_for(Duration::seconds(10));
  EXPECT_GT(chrome->bytes_fetched(), brave_bytes);
}

TEST_F(BrowserTest, ScrollBurstsRaiseAndSettle) {
  Browser* b = install(BrowserProfile::brave());
  ASSERT_TRUE(b->navigate("news-a.example").ok());
  sim.run_for(Duration::seconds(10));
  const double idle = dev->processes().total_demand();
  b->on_swipe(-600);
  EXPECT_GT(dev->processes().total_demand(), idle);
  sim.run_for(Duration::seconds(2));
  EXPECT_NEAR(dev->processes().total_demand(), idle, 0.15);
}

TEST_F(BrowserTest, LitePagesRespectSettingAndRegion) {
  Browser* b = install(BrowserProfile::chrome());
  EXPECT_FALSE(b->lite_pages_active()) << "home region defaults off";
  dev->set_network_region("Japan");
  EXPECT_TRUE(b->lite_pages_active()) << "Japan defaults on (§4.3)";
  dev->os().put_setting("secure", "chrome_lite_pages", "0");
  EXPECT_FALSE(b->lite_pages_active()) << "explicit off wins";
  dev->set_network_region("");
  dev->os().put_setting("secure", "chrome_lite_pages", "1");
  EXPECT_TRUE(b->lite_pages_active()) << "explicit on wins";
  Browser* brave = install(BrowserProfile::brave());
  EXPECT_FALSE(brave->lite_pages_active()) << "unsupported engine";
}

TEST_F(BrowserTest, NavigationWhileLoadingRejected) {
  Browser* b = install(BrowserProfile::brave());
  ASSERT_TRUE(b->navigate("news-a.example").ok());
  EXPECT_FALSE(b->navigate("news-b.example").ok());
}

TEST_F(BrowserTest, ClearStateResetsFirstRun) {
  Browser* b = install(BrowserProfile::chrome());
  b->on_tap(0, 0);
  b->on_tap(0, 0);
  ASSERT_TRUE(b->first_run_complete());
  ASSERT_TRUE(dev->os().clear_data(b->package()).ok());
  EXPECT_FALSE(b->first_run_complete());
  EXPECT_EQ(b->pages_loaded(), 0u);
}

// -------------------------------------------------------- video player ----

TEST_F(BrowserTest, VideoPlayerEngagesDecoder) {
  auto player = std::make_unique<VideoPlayerApp>(*dev);
  VideoPlayerApp* p = player.get();
  ASSERT_TRUE(dev->os().install(std::move(player)).ok());
  ASSERT_TRUE(dev->os().start_activity(p->package()).ok());
  EXPECT_FALSE(dev->decoder_active());
  const double before = dev->demand_ma();
  ASSERT_TRUE(p->play("/sdcard/video.mp4").ok());
  EXPECT_TRUE(dev->decoder_active());
  EXPECT_GT(dev->demand_ma(), before);
  EXPECT_DOUBLE_EQ(dev->screen().content_change_rate(), 0.60);
  EXPECT_FALSE(p->play("/sdcard/other.mp4").ok()) << "already playing";
  ASSERT_TRUE(p->pause().ok());
  EXPECT_FALSE(dev->decoder_active());
  EXPECT_FALSE(p->pause().ok());
}

// ----------------------------------------------------------------- adb ----

class AdbTest : public ::testing::Test {
 protected:
  AdbTest() : net{sim, 21} {
    DeviceSpec spec;
    spec.serial = "A1";
    dev = std::make_unique<AndroidDevice>(sim, net, "dev.A1", spec, 5);
    daemon = std::make_unique<AdbDaemon>(*dev);
    hub = std::make_unique<net::UsbHub>(net, "ctrl", 2);
    ap = std::make_unique<net::WifiAccessPoint>(net, "ctrl", "ctrl");
    EXPECT_TRUE(hub->attach("dev.A1").ok());
    EXPECT_TRUE(ap->associate("dev.A1").ok());
    client = std::make_unique<AdbClient>(net, "ctrl");
    dev->power_on();
  }
  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<AndroidDevice> dev;
  std::unique_ptr<AdbDaemon> daemon;
  std::unique_ptr<net::UsbHub> hub;
  std::unique_ptr<net::WifiAccessPoint> ap;
  std::unique_ptr<AdbClient> client;
};

TEST_F(AdbTest, ShellOverUsb) {
  auto out = client->shell_sync("dev.A1", AdbTransport::kUsb, "whoami");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "shell");
  EXPECT_EQ(daemon->commands_served(), 1u);
}

TEST_F(AdbTest, ShellOverWifi) {
  auto out = client->shell_sync("dev.A1", AdbTransport::kWifi,
                                "getprop ro.product.model");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "Samsung J7 Duo");
}

TEST_F(AdbTest, WifiNeedsTcpipEnabled) {
  daemon->set_tcpip_enabled(false);
  auto out = client->shell_sync("dev.A1", AdbTransport::kWifi, "whoami");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(daemon->commands_rejected(), 1u);
}

TEST_F(AdbTest, BluetoothNeedsRoot) {
  auto out = client->shell_sync("dev.A1", AdbTransport::kBluetooth, "whoami");
  EXPECT_FALSE(out.ok()) << "unrooted device must reject ADB-over-BT (§3.3)";
}

TEST_F(AdbTest, RootedDeviceAllowsBluetooth) {
  DeviceSpec spec;
  spec.serial = "ROOT1";
  spec.rooted = true;
  AndroidDevice rooted{sim, net, "dev.ROOT1", spec, 6};
  AdbDaemon rooted_daemon{rooted};
  net.add_link("ctrl", "dev.ROOT1",
               net::LinkSpec::symmetric(Duration::millis(8), 1.5), "bt");
  rooted.power_on();
  auto out = client->shell_sync("dev.ROOT1", AdbTransport::kBluetooth,
                                "whoami");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "root");
}

TEST_F(AdbTest, OfflineDeviceRejects) {
  dev->power_off();
  auto out = client->shell_sync("dev.A1", AdbTransport::kUsb, "whoami");
  EXPECT_FALSE(out.ok());
}

TEST_F(AdbTest, ShellErrorPropagates) {
  auto out = client->shell_sync("dev.A1", AdbTransport::kUsb, "frobnicate");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().message.find("unknown command"), std::string::npos);
}

TEST_F(AdbTest, UsbCutFallsBackWhenClientRetriesOverWifi) {
  ASSERT_TRUE(hub->set_port_power_for("dev.A1", false).ok());
  auto usb = client->shell_sync("dev.A1", AdbTransport::kUsb, "whoami");
  EXPECT_FALSE(usb.ok()) << "no data path over a powered-off port";
  auto wifi = client->shell_sync("dev.A1", AdbTransport::kWifi, "whoami");
  EXPECT_TRUE(wifi.ok());
}

TEST(AdbTransportTest, Names) {
  EXPECT_STREQ(adb_transport_name(AdbTransport::kUsb), "usb");
  EXPECT_STREQ(adb_transport_name(AdbTransport::kWifi), "wifi");
  EXPECT_STREQ(adb_transport_name(AdbTransport::kBluetooth), "bt");
}

}  // namespace
}  // namespace blab::device
