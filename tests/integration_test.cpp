// End-to-end integration tests: the full pipeline from experimenter job
// submission through scheduling, SSH, automation, measurement and artifact
// retrieval — plus cross-cutting properties (determinism, multi-node).
#include <gtest/gtest.h>

#include <memory>

#include "automation/browser_workload.hpp"
#include "device/android.hpp"
#include "device/browser.hpp"
#include "server/access_server.hpp"
#include "server/maintenance.hpp"
#include "util/strings.hpp"

namespace blab {
namespace {

using util::Duration;

/// A whole BatteryLab deployment in one object.
struct Deployment {
  explicit Deployment(std::uint64_t seed = 20191113)
      : seed{seed}, net{sim, seed}, server{sim, net}, vpn{net, "internet"} {
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(Duration::millis(4), 900.0));
    server.scheduler().attach_vpn(&vpn);
  }

  api::VantagePoint& add_node(const std::string& label,
                              const std::string& serial) {
    api::VantagePointConfig config;
    config.name = label;
    config.seed = seed ^ util::fnv1a(label);
    auto vp = std::make_unique<api::VantagePoint>(sim, net, config);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(Duration::millis(6), 200.0));
    device::DeviceSpec spec;
    spec.serial = serial;
    EXPECT_TRUE(vp->add_device(spec).ok());
    EXPECT_TRUE(server.onboard_vantage_point(label, *vp).ok());
    nodes.push_back(std::move(vp));
    return *nodes.back();
  }

  std::uint64_t seed;
  sim::Simulator sim;
  net::Network net;
  server::AccessServer server;
  net::VpnProvider vpn;
  std::vector<std::unique_ptr<api::VantagePoint>> nodes;
};

TEST(IntegrationTest, FullJobPipelineEndToEnd) {
  Deployment d;
  d.add_node("node1", "J7DUO-1");
  const auto admin = d.server.users().register_user("root", server::Role::kAdmin);
  const auto alice =
      d.server.users().register_user("alice", server::Role::kExperimenter);
  ASSERT_TRUE(admin.ok() && alice.ok());

  // Alice deploys the §4.2 experiment as a job.
  server::Job job;
  job.name = "brave-energy";
  job.constraints.device_serial = "J7DUO-1";
  job.script = [](server::JobContext& ctx) -> util::Status {
    automation::BrowserWorkloadOptions options;
    options.pages = 2;
    options.scrolls_per_page = 2;
    auto run = automation::run_browser_energy_test(
        *ctx.api, ctx.device_serial, device::BrowserProfile::brave(), options);
    if (!run.ok()) return run.error();
    ctx.workspace->log("mean_ma=" +
                       util::format_double(run.value().mean_current_ma, 2));
    ctx.workspace->store_artifact(
        "discharge_mah",
        util::format_double(run.value().discharge_mah, 4));
    return util::Status::ok_status();
  };
  auto id = d.server.submit_job(alice.value(), std::move(job));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(d.server.approve_pipeline(admin.value(), id.value()).ok());
  auto ran = d.server.run_queue(alice.value());
  ASSERT_TRUE(ran.ok());
  EXPECT_EQ(ran.value(), 1u);

  const server::Job* done = d.server.scheduler().find(id.value());
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->state, server::JobState::kSucceeded);
  EXPECT_TRUE(done->workspace.has_artifact("discharge_mah"));
  EXPECT_FALSE(done->workspace.logs().empty());
  const double mah =
      std::stod(done->workspace.artifacts().at("discharge_mah"));
  EXPECT_GT(mah, 0.5);
  EXPECT_LT(mah, 20.0);
}

TEST(IntegrationTest, VpnJobChangesTrafficShape) {
  // Chrome through the Japan exit fetches ~20% fewer bytes (§4.3 / Fig. 6).
  Deployment d;
  d.add_node("node1", "J7DUO-1");
  const auto admin = d.server.users().register_user("root", server::Role::kAdmin);
  const auto alice =
      d.server.users().register_user("alice", server::Role::kExperimenter);

  std::uint64_t bytes_home = 0, bytes_japan = 0;
  auto make_job = [&](const std::string& location, std::uint64_t* sink) {
    server::Job job;
    job.name = "chrome-" + (location.empty() ? "home" : location);
    job.constraints.network_location = location;
    job.script = [sink](server::JobContext& ctx) -> util::Status {
      automation::BrowserWorkloadOptions options;
      options.pages = 3;
      options.scrolls_per_page = 1;
      auto run = automation::run_browser_energy_test(
          *ctx.api, ctx.device_serial, device::BrowserProfile::chrome(),
          options);
      if (!run.ok()) return run.error();
      *sink = run.value().bytes_fetched;
      return util::Status::ok_status();
    };
    auto id = d.server.submit_job(alice.value(), std::move(job));
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(d.server.approve_pipeline(admin.value(), id.value()).ok());
  };
  make_job("", &bytes_home);
  make_job("Japan", &bytes_japan);
  EXPECT_EQ(d.server.run_queue(alice.value()).value(), 2u);

  ASSERT_GT(bytes_home, 0u);
  ASSERT_GT(bytes_japan, 0u);
  const double drop =
      1.0 - static_cast<double>(bytes_japan) / static_cast<double>(bytes_home);
  EXPECT_NEAR(drop, 0.20, 0.05);
}

TEST(IntegrationTest, TwoVantagePointsScheduleIndependently) {
  Deployment d;
  d.add_node("node1", "PHONE-A");
  d.add_node("node2", "PHONE-B");
  const auto admin = d.server.users().register_user("root", server::Role::kAdmin);
  const auto alice =
      d.server.users().register_user("alice", server::Role::kExperimenter);

  std::vector<std::string> placements;
  for (const char* target : {"node2", "node1", ""}) {
    server::Job job;
    job.name = std::string{"placed-"} + target;
    job.constraints.node_label = target;
    job.script = [&placements](server::JobContext& ctx) {
      placements.push_back(ctx.node_label + "/" + ctx.device_serial);
      return util::Status::ok_status();
    };
    auto id = d.server.submit_job(alice.value(), std::move(job));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(d.server.approve_pipeline(admin.value(), id.value()).ok());
  }
  EXPECT_EQ(d.server.run_queue(alice.value()).value(), 3u);
  ASSERT_EQ(placements.size(), 3u);
  EXPECT_EQ(placements[0], "node2/PHONE-B");
  EXPECT_EQ(placements[1], "node1/PHONE-A");
  // The unconstrained job landed somewhere valid.
  EXPECT_TRUE(placements[2] == "node1/PHONE-A" ||
              placements[2] == "node2/PHONE-B");
}

TEST(IntegrationTest, SshDrivenMaintenanceAcrossNodes) {
  Deployment d;
  auto& vp1 = d.add_node("node1", "PHONE-A");
  auto& vp2 = d.add_node("node2", "PHONE-B");
  // Wire the controllers' command handlers to a tiny shell.
  for (auto* vp : {&vp1, &vp2}) {
    vp->controller().ssh_server().set_command_handler(
        [vp](const std::string& cmd) {
          if (cmd == "hostname") return net::SshCommandResult{0, vp->name()};
          return net::SshCommandResult{127, "unknown"};
        });
  }
  auto r1 = d.server.ssh_exec("node1", "hostname");
  auto r2 = d.server.ssh_exec("node2", "hostname");
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().output, "node1");
  EXPECT_EQ(r2.value().output, "node2");
}

TEST(IntegrationTest, MeasurementIsDeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Deployment d{seed};
    auto& vp = d.add_node("node1", "J7DUO-1");
    api::BatteryLabApi api{vp};
    EXPECT_TRUE(api.power_monitor().ok());
    EXPECT_TRUE(api.set_voltage(3.85).ok());
    auto capture = api.run_monitor("J7DUO-1", Duration::seconds(5));
    EXPECT_TRUE(capture.ok());
    return capture.value().mean_current_ma();
  };
  const double a = run_once(42);
  const double b = run_once(42);
  const double c = run_once(43);
  EXPECT_DOUBLE_EQ(a, b) << "same seed, same electrons";
  EXPECT_NE(a, c);
}

TEST(IntegrationTest, ConcurrentMeasurementAndMirroringOnTwoDevices) {
  Deployment d;
  auto& vp = d.add_node("node1", "PHONE-A");
  device::DeviceSpec second;
  second.serial = "PHONE-B";
  ASSERT_TRUE(vp.add_device(second).ok());
  api::BatteryLabApi api{vp};

  // Mirror device B while measuring device A: the relay isolates channels.
  ASSERT_TRUE(api.device_mirroring("PHONE-B").ok());
  ASSERT_TRUE(api.power_monitor().ok());
  ASSERT_TRUE(api.set_voltage(3.85).ok());
  ASSERT_TRUE(api.start_monitor("PHONE-A").ok());
  d.sim.run_for(Duration::seconds(5));
  auto capture = api.stop_monitor();
  ASSERT_TRUE(capture.ok());
  // Only PHONE-A's draw is measured: an idle phone, not idle + mirroring.
  auto* b = vp.find_device("PHONE-B");
  EXPECT_TRUE(b->encoder_active());
  EXPECT_NEAR(capture.value().mean_current_ma(),
              vp.find_device("PHONE-A")->demand_ma(), 40.0);
  ASSERT_TRUE(api.device_mirroring("PHONE-B", false).ok());
}

TEST(IntegrationTest, BrownOutRecoveryViaMaintenance) {
  Deployment d;
  auto& vp = d.add_node("node1", "J7DUO-1");
  api::BatteryLabApi api{vp};
  // Operator error: flipping to bypass with the monitor off.
  EXPECT_FALSE(vp.switch_power("J7DUO-1", hw::RelayPosition::kBypass).ok());
  EXPECT_FALSE(vp.find_device("J7DUO-1")->powered_on());
  // Recovery path: relay back to battery, reboot, verify over ADB.
  ASSERT_TRUE(vp.switch_power("J7DUO-1", hw::RelayPosition::kBattery).ok());
  vp.find_device("J7DUO-1")->power_on();
  auto out = api.execute_adb("J7DUO-1", "whoami");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "shell");
}

TEST(IntegrationTest, TesterInviteGatesTheSharedSession) {
  // End-to-end §3 story: experimenter posts a paid task, the invite token
  // gates the noVNC session, the recruited tester connects and interacts,
  // the experimenter signs off, the tester gets paid.
  Deployment d;
  auto& vp = d.add_node("node1", "J7DUO-1");
  d.server.enable_credit_enforcement();
  (void)d.server.users().register_user("alice", server::Role::kExperimenter);
  (void)d.server.credits().open_account("alice", 50.0);

  auto task = d.server.testers().post_task(
      "alice", "node1", "J7DUO-1", "scroll through a news site",
      server::TesterSource::kMTurk, 8.0, d.sim.now());
  ASSERT_TRUE(task.ok());
  const std::string invite = d.server.testers().find(task.value())->invite_token;

  // Experimenter starts mirroring with the invite as the session token and
  // hides the toolbar (§3.2).
  api::BatteryLabApi api{vp};
  ASSERT_TRUE(api.device_mirroring("J7DUO-1").ok());
  auto* session = vp.mirroring("J7DUO-1");
  session->novnc().set_access_token(invite);
  session->novnc().set_toolbar_visible(false);

  // The tester claims the task and joins with the token.
  auto claimed = d.server.testers().claim(invite, "turker-1");
  ASSERT_TRUE(claimed.ok());
  d.net.add_link("tester-laptop", vp.controller_host(),
                 net::LinkSpec::symmetric(Duration::millis(25), 30.0));
  d.net.listen({"tester-laptop", 7000}, [](const net::Message&) {});
  EXPECT_FALSE(
      session->novnc().connect_viewer({"crasher", 1}, "stolen").ok());
  ASSERT_TRUE(
      session->novnc().connect_viewer({"tester-laptop", 7000}, invite).ok());

  // They interact; the latency probe doubles as "the session works".
  auto latency =
      session->measure_latency_sync({"tester-laptop", 7000}, 540, 900);
  ASSERT_TRUE(latency.ok());
  EXPECT_GT(latency.value(), Duration::seconds(1));

  ASSERT_TRUE(
      d.server.testers().complete(task.value(), "alice", d.sim.now()).ok());
  EXPECT_DOUBLE_EQ(d.server.credits().balance("turker-1").value(), 8.0);
  (void)api.device_mirroring("J7DUO-1", false);
}

TEST(IntegrationTest, IosJobSchedulesLikeAnyOther) {
  Deployment d;
  auto& vp = d.add_node("node1", "PHONE-A");
  ASSERT_TRUE(vp.add_device(device::DeviceSpec::iphone("IPHONE8-1")).ok());
  const auto admin = d.server.users().register_user("root", server::Role::kAdmin);
  const auto alice =
      d.server.users().register_user("alice", server::Role::kExperimenter);

  double iphone_ma = 0.0;
  server::Job job;
  job.name = "iphone-idle-power";
  job.constraints.device_model = "iPhone 8";
  job.script = [&iphone_ma](server::JobContext& ctx) -> util::Status {
    // No ADB on iOS: the measurement path alone.
    if (ctx.api->execute_adb(ctx.device_serial, "whoami").ok()) {
      return util::make_error(util::ErrorCode::kUnknown,
                              "ADB should not exist on an iPhone");
    }
    if (auto st = ctx.api->power_monitor(); !st.ok()) return st;
    if (auto st = ctx.api->set_voltage(3.8); !st.ok()) return st;
    auto capture = ctx.api->run_monitor(ctx.device_serial,
                                        Duration::seconds(10));
    if (!capture.ok()) return capture.error();
    iphone_ma = capture.value().mean_current_ma();
    return util::Status::ok_status();
  };
  auto id = d.server.submit_job(alice.value(), std::move(job));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(d.server.approve_pipeline(admin.value(), id.value()).ok());
  EXPECT_EQ(d.server.run_queue(alice.value()).value(), 1u);
  const server::Job* done = d.server.scheduler().find(id.value());
  EXPECT_EQ(done->state, server::JobState::kSucceeded)
      << done->failure_reason;
  EXPECT_GT(iphone_ma, 30.0);
}

TEST(IntegrationTest, UploadTrafficAccountedDuringMirroring) {
  // §4.2: ~32 MB upload for a ~7 min mirrored test (50 MB upper bound at
  // 1 Mbps before noVNC compression). Scaled here: 1 minute of video.
  Deployment d;
  auto& vp = d.add_node("node1", "J7DUO-1");
  auto* dev = vp.find_device("J7DUO-1");
  api::BatteryLabApi api{vp};

  // A co-located viewer watches the session.
  d.net.add_link("viewer", vp.controller_host(),
                 net::LinkSpec::symmetric(Duration::micros(500), 100.0));
  d.net.listen({"viewer", 7200}, [](const net::Message&) {});
  ASSERT_TRUE(api.device_mirroring("J7DUO-1").ok());
  ASSERT_TRUE(
      vp.mirroring("J7DUO-1")->attach_viewer({"viewer", 7200}).ok());
  dev->screen().set_content_change_rate(0.6);  // video-like content
  d.net.reset_stats();
  d.sim.run_for(Duration::seconds(60));

  const double uplink_mb =
      static_cast<double>(d.net.stats("viewer").bytes_rx) / 1e6;
  // 1 Mbps * 60 s / 8 = 7.5 MB raw; ~0.61 compression -> ~4.6 MB.
  EXPECT_NEAR(uplink_mb, 4.6, 1.2);
  const double device_mb =
      static_cast<double>(vp.mirroring("J7DUO-1")->bytes_received()) / 1e6;
  EXPECT_NEAR(device_mb, 7.5, 1.5);
  ASSERT_TRUE(api.device_mirroring("J7DUO-1", false).ok());
}

}  // namespace
}  // namespace blab
