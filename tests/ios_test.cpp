// Tests for the iOS device path (§3.2–3.3, §5): no ADB, AirPlay mirroring,
// Bluetooth-keyboard / UI-test automation only.
#include <gtest/gtest.h>

#include <memory>

#include "api/batterylab_api.hpp"
#include "automation/bt_hid.hpp"
#include "automation/channels.hpp"
#include "device/android.hpp"
#include "device/browser.hpp"
#include "mirror/airplay.hpp"
#include "mirror/session.hpp"
#include "util/stats.hpp"

namespace blab {
namespace {

using util::Duration;

class IosFixture : public ::testing::Test {
 protected:
  IosFixture() : net{sim, 909} {
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(Duration::millis(4), 900.0));
    vp = std::make_unique<api::VantagePoint>(sim, net);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(Duration::millis(6), 200.0));
    auto added = vp->add_device(device::DeviceSpec::iphone("IPHONE8-1"));
    EXPECT_TRUE(added.ok());
    dev = added.value();
    api = std::make_unique<api::BatteryLabApi>(*vp);
  }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<api::VantagePoint> vp;
  device::AndroidDevice* dev = nullptr;
  std::unique_ptr<api::BatteryLabApi> api;
};

TEST_F(IosFixture, IphoneSpecIsIos) {
  EXPECT_EQ(dev->spec().platform, device::Platform::kIos);
  EXPECT_EQ(dev->spec().model, "iPhone 8");
  EXPECT_FALSE(dev->spec().rooted);
  EXPECT_STREQ(device::platform_name(dev->spec().platform), "ios");
  EXPECT_STREQ(device::platform_name(device::Platform::kAndroid), "android");
}

TEST_F(IosFixture, AdbUnavailable) {
  const auto out = api->execute_adb("IPHONE8-1", "whoami");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, util::ErrorCode::kUnsupported);
}

TEST_F(IosFixture, ScrcpyRefusesIos) {
  mirror::ScrcpyServer server{*dev, vp->controller_host(),
                              mirror::kFrameSinkPort};
  const auto st = server.start();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::ErrorCode::kUnsupported);
}

TEST_F(IosFixture, AirPlayRefusesAndroid) {
  device::DeviceSpec android;
  android.serial = "DROID";
  auto added = vp->add_device(android);
  ASSERT_TRUE(added.ok());
  mirror::AirPlaySender sender{*added.value(), vp->controller_host(),
                               mirror::kFrameSinkPort};
  EXPECT_FALSE(sender.start().ok());
}

TEST_F(IosFixture, AirPlayStreamsFrames) {
  mirror::AirPlaySender sender{*dev, vp->controller_host(),
                               mirror::kFrameSinkPort};
  std::uint64_t frames = 0;
  net.listen({vp->controller_host(), mirror::kFrameSinkPort},
             [&](const net::Message& m) {
               if (m.tag == "airplay.frame") ++frames;
             });
  ASSERT_TRUE(sender.start().ok());
  EXPECT_TRUE(dev->encoder_active());
  EXPECT_NE(dev->processes().find_by_name("mediaserverd"), nullptr);
  sim.run_for(Duration::seconds(2));
  EXPECT_NEAR(static_cast<double>(frames), 20.0, 2.0);
  sender.stop();
  EXPECT_FALSE(dev->encoder_active());
  EXPECT_EQ(dev->processes().find_by_name("mediaserverd"), nullptr);
}

TEST_F(IosFixture, MirroringSessionUsesAirPlay) {
  auto session = vp->start_mirroring("IPHONE8-1");
  ASSERT_TRUE(session.ok()) << session.error().str();
  EXPECT_TRUE(session.value()->is_ios());
  EXPECT_NE(session.value()->airplay(), nullptr);
  EXPECT_EQ(session.value()->scrcpy(), nullptr);
  dev->screen().set_content_change_rate(0.6);
  sim.run_for(Duration::seconds(2));
  EXPECT_GT(session.value()->frames_received(), 10u);
  EXPECT_TRUE(vp->stop_mirroring("IPHONE8-1").ok());
}

TEST_F(IosFixture, RemoteInputRidesHidKeyboard) {
  // Install an app and drive it through the noVNC → HID path.
  auto browser = std::make_unique<device::Browser>(
      *dev, device::BrowserProfile::brave());  // engine stand-in on iOS
  auto* b = browser.get();
  ASSERT_TRUE(dev->os().install(std::move(browser)).ok());
  ASSERT_TRUE(dev->os().start_activity(b->package()).ok());
  b->on_tap(0, 0);
  b->on_tap(0, 0);

  auto session = vp->start_mirroring("IPHONE8-1");
  ASSERT_TRUE(session.ok());
  net.add_link("viewer", vp->controller_host(),
               net::LinkSpec::symmetric(Duration::micros(500), 100.0));
  net.listen({"viewer", 7400}, [](const net::Message&) {});
  ASSERT_TRUE(session.value()->attach_viewer({"viewer", 7400}).ok());

  auto send_input = [&](const std::string& command) {
    net::Message input;
    input.src = {"viewer", 7400};
    input.dst = session.value()->novnc().address();
    input.tag = "novnc.input";
    input.payload = command;
    input.wire_bytes = 96;
    ASSERT_TRUE(net.send(std::move(input)).ok());
    sim.run_for(Duration::millis(700));
  };
  send_input("input text news-a.example");
  send_input("input keyevent 66");
  sim.run_for(Duration::seconds(8));
  EXPECT_EQ(b->pages_loaded(), 1u)
      << "HID-injected URL + enter must navigate";
}

TEST_F(IosFixture, LatencyProbeWorksOverAirPlay) {
  auto session = vp->start_mirroring("IPHONE8-1");
  ASSERT_TRUE(session.ok());
  net.add_link("viewer", vp->controller_host(),
               net::LinkSpec::symmetric(Duration::micros(500), 100.0));
  net.listen({"viewer", 7500}, [](const net::Message&) {});
  ASSERT_TRUE(session.value()->attach_viewer({"viewer", 7500}).ok());
  util::RunningStats stats;
  for (int i = 0; i < 10; ++i) {
    auto latency =
        session.value()->measure_latency_sync({"viewer", 7500}, 200, 400);
    ASSERT_TRUE(latency.ok()) << latency.error().str();
    stats.add(latency.value().to_seconds());
    sim.run_for(Duration::seconds(1));
  }
  // Same pipeline structure as Android, so the same ballpark.
  EXPECT_NEAR(stats.mean(), 1.44, 0.30);
}

TEST_F(IosFixture, MeasurementWorksWithoutAdb) {
  // The Table-1 measurement path has no ADB dependency.
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.8).ok());
  auto capture = api->run_monitor("IPHONE8-1", Duration::seconds(10));
  ASSERT_TRUE(capture.ok()) << capture.error().str();
  EXPECT_GT(capture.value().mean_current_ma(), 30.0);
  EXPECT_EQ(capture.value().sample_count(), 50000u);
}

TEST_F(IosFixture, BtKeyboardChannelDrivesIphone) {
  net::BluetoothAdapter dev_bt{net, dev->host()};
  ASSERT_TRUE(
      vp->controller().bluetooth().pair(dev_bt, net::BtProfile::kHid).ok());
  automation::BtKeyboardChannel channel{net, vp->controller().bluetooth(),
                                        *dev};
  ASSERT_TRUE(channel.ready().ok());
  auto browser = std::make_unique<device::Browser>(
      *dev, device::BrowserProfile::brave());
  auto* b = browser.get();
  ASSERT_TRUE(dev->os().install(std::move(browser)).ok());
  ASSERT_TRUE(channel.launch_app(b->package()).ok());
  sim.run_for(Duration::millis(300));
  EXPECT_TRUE(b->running());
  // App-state management must stay unsupported over HID, on iOS too.
  EXPECT_FALSE(channel.clear_app(b->package()).ok());
}

TEST_F(IosFixture, UiTestChannelWorksOnIos) {
  // XCTest-style instrumented builds drive the app directly (§3.3).
  auto browser = std::make_unique<device::Browser>(
      *dev, device::BrowserProfile::brave());
  auto* b = browser.get();
  ASSERT_TRUE(dev->os().install(std::move(browser)).ok());
  automation::UiTestChannel channel{*dev};
  ASSERT_TRUE(channel.launch_app(b->package()).ok());
  ASSERT_TRUE(channel.tap(1, 1).ok());
  ASSERT_TRUE(channel.tap(1, 1).ok());
  ASSERT_TRUE(channel.text("news-b.example").ok());
  ASSERT_TRUE(channel.key(device::kKeycodeEnter).ok());
  sim.run_for(Duration::seconds(8));
  EXPECT_EQ(b->pages_loaded(), 1u);
}

}  // namespace
}  // namespace blab
