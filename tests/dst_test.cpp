// Deterministic simulation testing (DST): seed-driven fuzzed scenarios run
// through the real access-server/scheduler/API stack, checked by invariant
// oracles after every step, and replayed from the same seed to prove the
// whole deployment is a pure function of (seed, scenario).
//
// To reproduce a failure locally, take the seed from the failure message and
// call blab::testing::replay_check(seed) — the report names the first
// divergent event. See DESIGN.md, "Deterministic simulation testing".
//
// This binary has a custom main: `blab_dst --jobs=N` (or BLAB_DST_JOBS=N)
// sets the worker count for the corpus tests below; 0 (the default) means
// one worker per hardware thread.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/trace_io.hpp"
#include "testing/harness.hpp"
#include "testing/persist_check.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace dst = blab::testing;

namespace {

using blab::util::Duration;
using blab::util::TimePoint;

/// Worker count for corpus tests; set by main() from --jobs=N or
/// BLAB_DST_JOBS. 0 = hardware concurrency (run_corpus's default).
unsigned g_corpus_jobs = 0;

// ------------------------------------------------------------------------
// The fuzz corpus: every seed builds a random deployment, survives its fault
// schedule with all oracles green, and replays byte-identically. The whole
// corpus runs through one worker pool instead of 40 separate gtest
// instances, so `ctest -L dst` pays one process start-up and the seeds run
// `--jobs` wide.
// ------------------------------------------------------------------------

TEST(DstCorpus, OraclesHoldAndReplayIsByteIdentical) {
  const auto seeds = dst::default_corpus(40);
  const auto reports = dst::run_replay_corpus(seeds, g_corpus_jobs);
  ASSERT_EQ(reports.size(), seeds.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const dst::ReplayReport& report = reports[i];
    ASSERT_EQ(report.seed, seeds[i]);
    EXPECT_TRUE(report.first.ok()) << report.first.violation_summary();
    EXPECT_TRUE(report.second.ok()) << report.second.violation_summary();
    EXPECT_TRUE(report.deterministic) << report.describe();
    EXPECT_EQ(report.first.digest_hex, report.second.digest_hex)
        << report.describe();
    EXPECT_GT(report.first.events_executed, 0u)
        << "seed " << report.seed
        << " ran no simulator events: " << report.first.description;
  }
}

// The pool must be invisible in the results: the same corpus run serially
// and with several workers yields byte-identical per-seed digests, in the
// same order. This is the determinism contract `--jobs` rides on.
TEST(DstCorpus, ParallelRunMatchesSerialPerSeed) {
  const auto seeds = dst::default_corpus(8);
  const auto serial = dst::run_corpus(seeds, 1);
  const auto parallel = dst::run_corpus(seeds, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed) << "result order diverged";
    EXPECT_EQ(serial[i].digest_hex, parallel[i].digest_hex)
        << "seed " << seeds[i] << " digest depends on the worker count";
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed)
        << "seed " << seeds[i];
    EXPECT_EQ(serial[i].trace.size(), parallel[i].trace.size())
        << "seed " << seeds[i];
    EXPECT_EQ(serial[i].metrics_text, parallel[i].metrics_text)
        << "seed " << seeds[i]
        << " telemetry snapshot depends on the worker count";
    EXPECT_FALSE(serial[i].metrics_text.empty()) << "seed " << seeds[i];
    EXPECT_EQ(serial[i].trace_json, parallel[i].trace_json)
        << "seed " << seeds[i]
        << " Perfetto trace output depends on the worker count";
    EXPECT_FALSE(serial[i].trace_json.empty()) << "seed " << seeds[i];
  }
}

// ------------------------------------------------------------------------
// Seed stability: the first five corpus seeds' digests are pinned in-repo.
// A diff here means some component consumed randomness or ordered events
// differently than it did when the golden values were recorded — that is a
// behavior change even if every oracle still passes. If the change is
// intentional, re-run this test and copy the printed digests over the
// pinned ones (see DESIGN.md).
// ------------------------------------------------------------------------

TEST(DstGolden, FirstFiveCorpusSeedDigestsArePinned) {
  const auto seeds = dst::default_corpus(5);
  // Re-pinned once by the ziggurat-sampler PR (DESIGN.md §13): the noise
  // stream and uniform_int draw order changed deliberately, with the ~2x
  // synthesis win banked in BENCH_core.json as the required justification.
  const std::vector<std::string> pinned = {
      "42ff2e955ac6a4e6",
      "525f856c01f5f42b",
      "780698edf08c0704",
      "13d16cc9fee701ea",
      "bc8899169e0b0b08",
  };
  ASSERT_EQ(seeds.size(), pinned.size());
  std::size_t captures = 0, faults = 0, dispatched = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const dst::ScenarioResult result = dst::run_scenario(seeds[i]);
    EXPECT_TRUE(result.ok()) << result.violation_summary();
    EXPECT_EQ(result.digest_hex, pinned[i])
        << "seed " << seeds[i] << " (" << result.description
        << ") drifted from its golden digest";
    captures += result.captures;
    faults += result.faults_injected;
    dispatched += result.jobs_dispatched;
  }
  // The pinned prefix must actually exercise the platform, not idle through.
  EXPECT_GT(dispatched, 0u);
  EXPECT_GT(faults, 0u);
  EXPECT_GT(captures, 0u);
}

// ------------------------------------------------------------------------
// Durable capture store: persistence must be invisible to the digest, and a
// kill -9 at a fuzzed sim-time must lose nothing the WAL already committed.
// ------------------------------------------------------------------------

// The durability engine schedules no simulator events and consumes no
// randomness, so running the pinned seeds with persistence enabled must
// reproduce the exact golden digests and event counts of the plain runs.
TEST(DstPersistence, PersistenceDoesNotPerturbPinnedDigests) {
  const std::string base = ::testing::TempDir() + "blab-dst-digest-" +
                           std::to_string(::getpid());
  for (const std::uint64_t seed : dst::default_corpus(5)) {
    const auto spec = dst::generate_scenario(seed);
    const dst::ScenarioResult plain = dst::run_scenario(spec);
    dst::RunOptions options;
    options.persist_dir = base + "/seed-" + std::to_string(seed);
    const dst::ScenarioResult persisted = dst::run_scenario(spec, options);
    EXPECT_TRUE(persisted.ok()) << persisted.violation_summary();
    EXPECT_EQ(plain.digest_hex, persisted.digest_hex)
        << "seed " << seed << ": enabling persistence changed the digest";
    EXPECT_EQ(plain.events_executed, persisted.events_executed)
        << "seed " << seed << ": persistence scheduled simulator events";
    EXPECT_EQ(plain.trace.size(), persisted.trace.size()) << "seed " << seed;
  }
  std::error_code ec;
  std::filesystem::remove_all(base, ec);
}

// The kill-restart oracle: run each corpus seed with persistence, tear the
// deployment down mid-step with no shutdown path, restart onto the same
// directory (most seeds with extra garbage smeared over a WAL tail), and
// require every store query answer to survive byte-identically.
TEST(DstPersistence, CrashRecoveryOracleAcrossCorpus) {
  const auto seeds = dst::default_corpus(40);
  const unsigned jobs = g_corpus_jobs == 0 ? 4 : g_corpus_jobs;
  const std::string base = ::testing::TempDir() + "blab-dst-crash-" +
                           std::to_string(::getpid());
  const auto reports = dst::run_crash_recovery_corpus(seeds, jobs, base);
  ASSERT_EQ(reports.size(), seeds.size());
  std::size_t with_data = 0, torn = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].seed, seeds[i]);
    EXPECT_TRUE(reports[i].ok) << reports[i].describe();
    with_data += reports[i].recovered > 0 ? 1 : 0;
    torn += reports[i].torn_tail ? 1 : 0;
  }
  // The corpus must actually exercise recovery, not vacuously pass on empty
  // stores and untouched WALs.
  EXPECT_GT(with_data, 0u) << "no seed persisted any capture before its kill";
  EXPECT_GT(torn, 0u);
  std::error_code ec;
  std::filesystem::remove_all(base, ec);
}

// ------------------------------------------------------------------------
// Retry lineage: with the harness retry knob on, every terminal
// failed/aborted job is resubmitted once, so each corpus seed exercises the
// cross-trace "retry_of" links under the retry-chain oracle and keeps the
// weighted span families honest under the span-conservation oracle. The
// knob is opt-in because the extra submissions change the event stream —
// the pinned golden digests above deliberately cover only plain runs.
// ------------------------------------------------------------------------

TEST(DstRetry, RetryChainsHoldAcrossCorpusSerialAndPooled) {
  const auto seeds = dst::default_corpus(40);
  const unsigned jobs = g_corpus_jobs == 0 ? 4 : g_corpus_jobs;
  dst::RunOptions options;
  options.retry_failed_jobs = true;
  const auto serial = dst::run_corpus(seeds, 1, options);
  const auto pooled = dst::run_corpus(seeds, jobs, options);
  ASSERT_EQ(serial.size(), seeds.size());
  ASSERT_EQ(pooled.size(), seeds.size());
  double resubmitted = 0.0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(serial[i].ok()) << serial[i].violation_summary();
    EXPECT_TRUE(pooled[i].ok()) << pooled[i].violation_summary();
    EXPECT_EQ(serial[i].digest_hex, pooled[i].digest_hex)
        << "seed " << seeds[i] << " retry digest depends on the worker count";
    EXPECT_EQ(serial[i].metrics_text, pooled[i].metrics_text)
        << "seed " << seeds[i];
    EXPECT_EQ(serial[i].trace_json, pooled[i].trace_json)
        << "seed " << seeds[i];
    resubmitted +=
        serial[i].metrics.value_or("blab_scheduler_jobs_resubmitted_total");
  }
  // The corpus must actually resubmit something, or the retry-chain oracle
  // passes vacuously on a fault schedule that never failed a job.
  EXPECT_GT(resubmitted, 0.0)
      << "no corpus seed produced a failed/aborted job to resubmit";
}

// ------------------------------------------------------------------------
// Fleet health engine: with the harness health knob on, every corpus seed
// stands up the rollup + SLO engines, evaluates SLOs on a recurring
// maintenance cadence, and answers GET /rollup + GET /health at scenario
// end. The rollup-accuracy oracle cross-checks the rollups against an
// independent catalog fold after every step, and the REST bodies must be
// byte-identical between serial and pooled runs. Like retries, the knob is
// opt-in because the recurring jobs change the event stream — the pinned
// golden digests cover only plain runs.
// ------------------------------------------------------------------------

TEST(DstHealth, RollupsAndHealthHoldAcrossCorpusSerialAndPooled) {
  const auto seeds = dst::default_corpus(40);
  const unsigned jobs = g_corpus_jobs == 0 ? 4 : g_corpus_jobs;
  dst::RunOptions options;
  options.enable_health = true;
  const auto serial = dst::run_corpus(seeds, 1, options);
  const auto pooled = dst::run_corpus(seeds, jobs, options);
  ASSERT_EQ(serial.size(), seeds.size());
  ASSERT_EQ(pooled.size(), seeds.size());
  std::size_t with_captures = 0;
  double evaluations = 0.0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(serial[i].ok()) << serial[i].violation_summary();
    EXPECT_TRUE(pooled[i].ok()) << pooled[i].violation_summary();
    EXPECT_EQ(serial[i].digest_hex, pooled[i].digest_hex)
        << "seed " << seeds[i] << " health digest depends on the worker count";
    EXPECT_EQ(serial[i].rollup_fleet_json, pooled[i].rollup_fleet_json)
        << "seed " << seeds[i] << " GET /rollup?scope=fleet is not "
        << "byte-identical between serial and pooled runs";
    EXPECT_EQ(serial[i].rollup_job_json, pooled[i].rollup_job_json)
        << "seed " << seeds[i];
    EXPECT_EQ(serial[i].rollup_vantage_json, pooled[i].rollup_vantage_json)
        << "seed " << seeds[i];
    EXPECT_EQ(serial[i].health_json, pooled[i].health_json)
        << "seed " << seeds[i] << " GET /health is not byte-identical";
    EXPECT_FALSE(serial[i].rollup_fleet_json.empty()) << "seed " << seeds[i];
    EXPECT_FALSE(serial[i].health_json.empty()) << "seed " << seeds[i];
    EXPECT_NE(serial[i].health_json.find("\"overall\""), std::string::npos)
        << "seed " << seeds[i] << ": " << serial[i].health_json;
    with_captures += serial[i].captures > 0 ? 1 : 0;
    evaluations += serial[i].metrics.value_or("blab_slo_evaluations_total");
  }
  // The corpus must actually feed the engines: some seeds archive captures
  // (so the rollup-accuracy oracle sees non-empty catalogs) and the
  // recurring maintenance job must have evaluated SLOs.
  EXPECT_GT(with_captures, 0u) << "no corpus seed archived any capture";
  EXPECT_GT(evaluations, 0.0) << "no recurring SLO evaluation ever ran";
}

// Turning the health engine on must not perturb what it observes: the
// pinned golden seeds still pass every oracle (now including
// rollup-accuracy) and their REST bodies replay byte-identically.
TEST(DstHealth, HealthRunsAreReplayDeterministic) {
  for (const std::uint64_t seed : dst::default_corpus(5)) {
    const auto spec = dst::generate_scenario(seed);
    dst::RunOptions options;
    options.enable_health = true;
    const dst::ScenarioResult first = dst::run_scenario(spec, options);
    const dst::ScenarioResult second = dst::run_scenario(spec, options);
    EXPECT_TRUE(first.ok()) << first.violation_summary();
    EXPECT_EQ(first.digest_hex, second.digest_hex) << "seed " << seed;
    EXPECT_EQ(first.rollup_fleet_json, second.rollup_fleet_json)
        << "seed " << seed;
    EXPECT_EQ(first.rollup_job_json, second.rollup_job_json)
        << "seed " << seed;
    EXPECT_EQ(first.rollup_vantage_json, second.rollup_vantage_json)
        << "seed " << seed;
    EXPECT_EQ(first.health_json, second.health_json) << "seed " << seed;
  }
}

// ------------------------------------------------------------------------
// Scenario generator properties.
// ------------------------------------------------------------------------

TEST(ScenarioGen, SameSeedYieldsSameSpec) {
  const auto a = dst::generate_scenario(42);
  const auto b = dst::generate_scenario(42);
  EXPECT_EQ(dst::describe(a), dst::describe(b));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].name, b.jobs[i].name);
    EXPECT_EQ(a.jobs[i].submit_step, b.jobs[i].submit_step);
    EXPECT_EQ(a.jobs[i].shape, b.jobs[i].shape);
  }
}

TEST(ScenarioGen, CorpusGrowthPreservesExistingSeeds) {
  const auto small = dst::default_corpus(5);
  const auto large = dst::default_corpus(40);
  ASSERT_GE(large.size(), small.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], large[i]) << "corpus seed " << i << " changed";
  }
}

TEST(ScenarioGen, GeneratedSpecsRespectDocumentedBounds) {
  for (std::uint64_t seed : dst::default_corpus(10)) {
    const auto spec = dst::generate_scenario(seed);
    EXPECT_GE(spec.nodes.size(), 1u);
    EXPECT_LE(spec.nodes.size(), 8u);
    for (const auto& node : spec.nodes) {
      EXPECT_GE(node.devices.size(), 1u);
      EXPECT_LE(node.devices.size(), 3u);
    }
    EXPECT_GE(spec.steps, 3);
    EXPECT_LE(spec.steps, 6);
    EXPECT_GE(spec.jobs.size(), 4u);
    EXPECT_EQ(spec.initial_credits.size(), spec.experimenters);
    for (const auto& job : spec.jobs) {
      EXPECT_LT(job.submit_step, spec.steps);
      EXPECT_LT(job.node, spec.nodes.size());
    }
    for (const auto& fault : spec.faults) {
      EXPECT_LT(fault.node, spec.nodes.size());
    }
  }
}

// ------------------------------------------------------------------------
// Trace recorder and divergence differ.
// ------------------------------------------------------------------------

TEST(TraceDiff, IdenticalTracesDoNotDiverge) {
  std::vector<dst::TraceEventRecord> a{
      {TimePoint::epoch(), 1, "boot", 0},
      {TimePoint::epoch() + Duration::millis(5), 2, "poll", 0}};
  const auto d = dst::first_divergence(a, a);
  EXPECT_FALSE(d.diverged);
  EXPECT_EQ(d.describe(), "traces identical");
}

TEST(TraceDiff, PinpointsFirstDifferingEvent) {
  std::vector<dst::TraceEventRecord> a{
      {TimePoint::epoch(), 1, "boot", 0},
      {TimePoint::epoch() + Duration::millis(5), 2, "poll", 0}};
  std::vector<dst::TraceEventRecord> b = a;
  b[1].label = "tick";
  const auto d = dst::first_divergence(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 1u);
  EXPECT_NE(d.describe().find("poll"), std::string::npos);
  EXPECT_NE(d.describe().find("tick"), std::string::npos);
}

TEST(TraceDiff, ReportsLengthMismatch) {
  std::vector<dst::TraceEventRecord> a{{TimePoint::epoch(), 1, "boot", 0}};
  std::vector<dst::TraceEventRecord> b;
  const auto d = dst::first_divergence(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 0u);
  EXPECT_NE(d.second.find("ended after 0 events"), std::string::npos);
}

TEST(TraceRecorder, NotesFoldIntoTheDigest) {
  blab::sim::Simulator sim;
  dst::TraceRecorder rec{sim};
  const std::uint64_t before = rec.digest();
  rec.note("checkpoint");
  EXPECT_NE(rec.digest(), before);
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].label, "checkpoint");
  EXPECT_EQ(rec.events()[0].seq, 0u);
}

TEST(TraceRecorder, DetachesFromSimulatorOnDestruction) {
  blab::sim::Simulator sim;
  {
    dst::TraceRecorder rec{sim};
    EXPECT_TRUE(sim.has_trace_hook());
  }
  EXPECT_FALSE(sim.has_trace_hook());
}

// ------------------------------------------------------------------------
// trace_io round-trip fuzz: export -> import -> export must be
// byte-identical, and malformed streams must be rejected, not mangled.
// ------------------------------------------------------------------------

TEST(TraceIoFuzz, ExportImportExportIsByteIdentical) {
  blab::util::Rng rng{0xD57C55ULL};
  // Rates whose sample period is exact at the CSV's 6-decimal resolution.
  const std::vector<double> rates{200.0, 500.0, 1000.0, 2000.0, 5000.0};
  for (int round = 0; round < 30; ++round) {
    const double hz = rng.pick(rates);
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 400));
    std::vector<float> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      samples.push_back(static_cast<float>(rng.uniform(0.0, 6000.0)));
    }
    const blab::hw::Capture original{TimePoint::epoch(), hz,
                                     rng.uniform(3.3, 11.4), samples};
    std::ostringstream first;
    blab::analysis::write_capture_csv(original, first);
    std::istringstream in{first.str()};
    auto imported = blab::analysis::read_capture_csv_stream(in);
    ASSERT_TRUE(imported.ok()) << "round " << round;
    EXPECT_EQ(imported.value().sample_count(), n);
    EXPECT_DOUBLE_EQ(imported.value().sample_hz(), hz);
    std::ostringstream second;
    blab::analysis::write_capture_csv(imported.value(), second);
    EXPECT_EQ(first.str(), second.str())
        << "round " << round << " (hz=" << hz << ", n=" << n
        << ") did not round-trip byte-identically";
  }
}

TEST(TraceIoFuzz, RejectsTruncatedStream) {
  const std::string csv =
      "time_s,current_mA,voltage\n"
      "0.000000,100.000,3.850\n"
      "0.000200,101.2";  // final row cut mid-field: only two columns
  std::istringstream in{csv};
  const auto result = blab::analysis::read_capture_csv_stream(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, blab::util::ErrorCode::kInvalidArgument);
}

TEST(TraceIoFuzz, RejectsNaNSample) {
  const std::string csv =
      "time_s,current_mA,voltage\n"
      "0.000000,100.000,3.850\n"
      "0.000200,nan,3.850\n";
  std::istringstream in{csv};
  const auto result = blab::analysis::read_capture_csv_stream(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, blab::util::ErrorCode::kInvalidArgument);
}

TEST(TraceIoFuzz, RejectsOutOfOrderTimestamps) {
  const std::string csv =
      "time_s,current_mA,voltage\n"
      "0.000000,100.000,3.850\n"
      "0.000400,101.000,3.850\n"
      "0.000200,102.000,3.850\n";
  std::istringstream in{csv};
  const auto result = blab::analysis::read_capture_csv_stream(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, blab::util::ErrorCode::kInvalidArgument);
}

TEST(TraceIoFuzz, RejectsDuplicateTimestamps) {
  const std::string csv =
      "time_s,current_mA,voltage\n"
      "0.000000,100.000,3.850\n"
      "0.000000,101.000,3.850\n";
  std::istringstream in{csv};
  const auto result = blab::analysis::read_capture_csv_stream(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, blab::util::ErrorCode::kInvalidArgument);
}

// ------------------------------------------------------------------------
// Oracle registry surface.
// ------------------------------------------------------------------------

TEST(Oracles, DefaultRegistryCoversTheDocumentedInvariants) {
  dst::OracleRegistry registry;
  const auto names = registry.names();
  const std::vector<std::string> expected{
      "clock-monotonicity", "scheduler-safety",  "credit-ledger",
      "energy-conservation", "battery-sanity",   "mirroring-lifecycle",
      "dns-cert-consistency", "metric-accounting", "trace-integrity",
      "retry-chain",          "span-conservation", "rollup-accuracy"};
  for (const auto& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "missing oracle: " << name;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);  // consumes gtest's own flags
  if (const char* env = std::getenv("BLAB_DST_JOBS")) {
    g_corpus_jobs = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kJobs = "--jobs=";
    if (arg.rfind(kJobs, 0) == 0) {
      g_corpus_jobs = static_cast<unsigned>(
          std::strtoul(arg.substr(kJobs.size()).data(), nullptr, 10));
    }
  }
  return RUN_ALL_TESTS();
}
