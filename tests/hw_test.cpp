// Unit tests for the hardware substrate: battery, timelines, GPIO, relay
// board, Monsoon power monitor, WiFi power socket.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hw/battery.hpp"
#include "hw/gpio.hpp"
#include "hw/power_monitor.hpp"
#include "hw/power_socket.hpp"
#include "hw/relay.hpp"
#include "hw/timeline.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace blab::hw {
namespace {

using util::Duration;
using util::TimePoint;

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::epoch() + Duration::millis(ms);
}

// ------------------------------------------------------------- battery ----

TEST(BatteryTest, StartsFullAndDischarges) {
  Battery batt;
  EXPECT_DOUBLE_EQ(batt.soc(), 1.0);
  // 300 mA for one hour = 300 mAh out of 3000.
  const double removed = batt.discharge(300.0, Duration::seconds(3600));
  EXPECT_NEAR(removed, 300.0, 1e-9);
  EXPECT_NEAR(batt.soc(), 0.9, 1e-9);
  EXPECT_NEAR(batt.remaining_mah(), 2700.0, 1e-6);
}

TEST(BatteryTest, CannotDischargeBelowEmpty) {
  BatterySpec spec;
  spec.capacity_mah = 10.0;
  Battery batt{spec};
  const double removed = batt.discharge(1000.0, Duration::seconds(3600));
  EXPECT_NEAR(removed, 10.0, 1e-9);
  EXPECT_TRUE(batt.depleted());
  EXPECT_EQ(batt.discharge(100.0, Duration::seconds(10)), 0.0);
}

TEST(BatteryTest, VoltageMonotonicInSoc) {
  Battery batt;
  double prev = -1.0;
  for (double soc = 0.0; soc <= 1.0; soc += 0.01) {
    batt.set_soc(soc);
    const double v = batt.open_circuit_voltage();
    EXPECT_GE(v, prev) << "OCV must be monotone at soc=" << soc;
    prev = v;
  }
  batt.set_soc(1.0);
  EXPECT_DOUBLE_EQ(batt.open_circuit_voltage(), batt.spec().full_voltage);
  batt.set_soc(0.0);
  EXPECT_DOUBLE_EQ(batt.open_circuit_voltage(), batt.spec().empty_voltage);
}

TEST(BatteryTest, TerminalVoltageSagsUnderLoad) {
  Battery batt;
  const double open = batt.terminal_voltage(0.0);
  const double loaded = batt.terminal_voltage(1000.0);
  EXPECT_NEAR(open - loaded, batt.spec().internal_resistance_ohm, 1e-9);
}

TEST(BatteryTest, ChargeClampsAtFull) {
  Battery batt{{}, 0.5};
  batt.charge(10000.0);
  EXPECT_DOUBLE_EQ(batt.soc(), 1.0);
}

TEST(BatteryTest, TotalDischargedAccumulates) {
  Battery batt;
  batt.discharge(100.0, Duration::seconds(3600));
  batt.discharge(200.0, Duration::seconds(1800));
  EXPECT_NEAR(batt.total_discharged_mah(), 200.0, 1e-9);
}

// Property: discharge is monotone for any load pattern.
class BatteryDischargeSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BatteryDischargeSweep, SocNeverIncreasesUnderLoad) {
  util::Rng rng{GetParam()};
  Battery batt;
  double prev_soc = batt.soc();
  for (int i = 0; i < 200; ++i) {
    batt.discharge(rng.uniform(0.0, 2000.0),
                   Duration::millis(rng.uniform_int(1, 60000)));
    EXPECT_LE(batt.soc(), prev_soc);
    prev_soc = batt.soc();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatteryDischargeSweep,
                         ::testing::Values(1, 7, 21, 99));

// ------------------------------------------------------------ timeline ----

TEST(TimelineTest, AtReturnsLatestBreakpoint) {
  Timeline tl;
  EXPECT_EQ(tl.at(at_ms(100)), 0.0);
  tl.set(at_ms(0), 10.0);
  tl.set(at_ms(100), 20.0);
  EXPECT_EQ(tl.at(at_ms(0)), 10.0);
  EXPECT_EQ(tl.at(at_ms(50)), 10.0);
  EXPECT_EQ(tl.at(at_ms(100)), 20.0);
  EXPECT_EQ(tl.at(at_ms(5000)), 20.0);
  EXPECT_EQ(tl.last_value(), 20.0);
}

TEST(TimelineTest, DuplicateValueCollapses) {
  Timeline tl;
  tl.set(at_ms(0), 5.0);
  tl.set(at_ms(10), 5.0);
  EXPECT_EQ(tl.breakpoints(), 1u);
  tl.set(at_ms(10), 6.0);
  EXPECT_EQ(tl.breakpoints(), 2u);
  tl.set(at_ms(10), 7.0);  // same-timestamp overwrite
  EXPECT_EQ(tl.breakpoints(), 2u);
  EXPECT_EQ(tl.at(at_ms(10)), 7.0);
}

TEST(TimelineTest, SegmentsClampToWindow) {
  Timeline tl;
  tl.set(at_ms(0), 1.0);
  tl.set(at_ms(100), 2.0);
  tl.set(at_ms(200), 3.0);
  const auto segs = tl.segments(at_ms(50), at_ms(150));
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].first, at_ms(50));
  EXPECT_EQ(segs[0].second, 1.0);
  EXPECT_EQ(segs[1].first, at_ms(100));
  EXPECT_EQ(segs[1].second, 2.0);
}

TEST(TimelineTest, IntegralAndMean) {
  Timeline tl;
  tl.set(at_ms(0), 100.0);
  tl.set(at_ms(500), 200.0);
  // 0.5s at 100 + 0.5s at 200 = 150 value-seconds over 1s.
  EXPECT_NEAR(tl.integral(at_ms(0), at_ms(1000)), 150.0, 1e-9);
  EXPECT_NEAR(tl.mean(at_ms(0), at_ms(1000)), 150.0, 1e-9);
}

TEST(TimelineTest, PruneKeepsBoundaryValue) {
  Timeline tl;
  tl.set(at_ms(0), 1.0);
  tl.set(at_ms(100), 2.0);
  tl.set(at_ms(200), 3.0);
  tl.prune_before(at_ms(150));
  EXPECT_EQ(tl.at(at_ms(150)), 2.0);
  EXPECT_EQ(tl.at(at_ms(250)), 3.0);
}

// ---------------------------------------------------------------- gpio ----

TEST(GpioTest, WriteRequiresOutputMode) {
  GpioController gpio;
  EXPECT_FALSE(gpio.write(5, PinLevel::kHigh).ok());
  ASSERT_TRUE(gpio.set_mode(5, PinMode::kOutput).ok());
  EXPECT_TRUE(gpio.write(5, PinLevel::kHigh).ok());
  auto level = gpio.read(5);
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(level.value(), PinLevel::kHigh);
}

TEST(GpioTest, PinRangeChecked) {
  GpioController gpio{4};
  EXPECT_FALSE(gpio.set_mode(4, PinMode::kOutput).ok());
  EXPECT_FALSE(gpio.set_mode(-1, PinMode::kOutput).ok());
  EXPECT_FALSE(gpio.read(17).ok());
}

TEST(GpioTest, ListenersObserveWrites) {
  GpioController gpio;
  ASSERT_TRUE(gpio.set_mode(3, PinMode::kOutput).ok());
  int calls = 0;
  PinLevel seen = PinLevel::kLow;
  gpio.on_write(3, [&](int, PinLevel level) {
    ++calls;
    seen = level;
  });
  ASSERT_TRUE(gpio.write(3, PinLevel::kHigh).ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, PinLevel::kHigh);
}

// --------------------------------------------------------------- relay ----

/// Constant test load.
class ConstantLoad : public Load {
 public:
  explicit ConstantLoad(double ma) : ma_{ma} {}
  double current_ma(TimePoint) const override { return ma_; }
  std::vector<std::pair<TimePoint, double>> current_segments(
      TimePoint t0, TimePoint) const override {
    return {{t0, ma_}};
  }

 private:
  double ma_;
};

class RelayTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  GpioController gpio;
  RelayBoard relay{sim, gpio, 4, 17};
};

TEST_F(RelayTest, DefaultsToBatteryPosition) {
  for (int ch = 0; ch < 4; ++ch) {
    auto pos = relay.position(ch);
    ASSERT_TRUE(pos.ok());
    EXPECT_EQ(pos.value(), RelayPosition::kBattery);
  }
  EXPECT_FALSE(relay.any_bypass());
}

TEST_F(RelayTest, SwitchTakesActuationTime) {
  ASSERT_TRUE(relay.set_position(1, RelayPosition::kBypass).ok());
  EXPECT_EQ(relay.position(1).value(), RelayPosition::kBattery)
      << "contacts must not settle instantaneously";
  sim.run_for(relay.spec().switch_time);
  EXPECT_EQ(relay.position(1).value(), RelayPosition::kBypass);
  EXPECT_EQ(relay.toggles(1).value(), 1u);
}

TEST_F(RelayTest, ChannelIsExclusive) {
  // SPDT by construction: bypass channels are exactly the non-battery ones.
  ASSERT_TRUE(relay.set_position(0, RelayPosition::kBypass).ok());
  ASSERT_TRUE(relay.set_position(2, RelayPosition::kBypass).ok());
  sim.run_for(relay.spec().switch_time);
  const auto bypass = relay.bypass_channels();
  EXPECT_EQ(bypass, (std::vector<int>{0, 2}));
  for (int ch : bypass) {
    EXPECT_NE(relay.position(ch).value(), RelayPosition::kBattery);
  }
}

TEST_F(RelayTest, MeasuresOnlyBypassChannels) {
  ConstantLoad load_a{100.0};
  ConstantLoad load_b{200.0};
  ASSERT_TRUE(relay.connect_load(0, &load_a).ok());
  ASSERT_TRUE(relay.connect_load(1, &load_b).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(relay.current_ma(sim.now()), 0.0);

  ASSERT_TRUE(relay.set_position(1, RelayPosition::kBypass).ok());
  sim.run_for(Duration::seconds(1));
  const double loss = relay.spec().contact_loss_fraction;
  EXPECT_NEAR(relay.current_ma(sim.now()), 200.0 * (1.0 + loss), 1e-9);

  ASSERT_TRUE(relay.set_position(0, RelayPosition::kBypass).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_NEAR(relay.current_ma(sim.now()), 300.0 * (1.0 + loss), 1e-9);
}

TEST_F(RelayTest, SwitchingTransientDecays) {
  ConstantLoad load{100.0};
  ASSERT_TRUE(relay.connect_load(0, &load).ok());
  ASSERT_TRUE(relay.set_position(0, RelayPosition::kBypass).ok());
  sim.run_for(relay.spec().switch_time);
  const TimePoint settled = sim.now();
  const double loss = relay.spec().contact_loss_fraction;
  // Right after settling: transient extra visible.
  EXPECT_GT(relay.current_ma(settled), 100.0 * (1.0 + loss));
  // After the transient window: clean reading.
  sim.run_for(relay.spec().transient_duration + Duration::millis(1));
  EXPECT_NEAR(relay.current_ma(sim.now()), 100.0 * (1.0 + loss), 1e-9);
}

TEST_F(RelayTest, ChannelValidation) {
  EXPECT_FALSE(relay.set_position(-1, RelayPosition::kBypass).ok());
  EXPECT_FALSE(relay.set_position(4, RelayPosition::kBypass).ok());
  ConstantLoad load{1.0};
  ASSERT_TRUE(relay.connect_load(3, &load).ok());
  EXPECT_FALSE(relay.connect_load(3, &load).ok()) << "channel already wired";
  ASSERT_TRUE(relay.disconnect_load(3).ok());
  EXPECT_TRUE(relay.connect_load(3, &load).ok());
}

TEST_F(RelayTest, SegmentsMergeLoadBreakpoints) {
  ConstantLoad load{150.0};
  ASSERT_TRUE(relay.connect_load(0, &load).ok());
  ASSERT_TRUE(relay.set_position(0, RelayPosition::kBypass).ok());
  sim.run_for(Duration::seconds(2));
  const auto segs = relay.current_segments(TimePoint::epoch(), sim.now());
  ASSERT_GE(segs.size(), 2u);  // off, transient, steady
  EXPECT_EQ(segs.front().second, 0.0);
}

// ------------------------------------------------------- power monitor ----

class MonitorTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  PowerMonitor monitor{sim, util::Rng{42}};
  ConstantLoad load{160.0};
};

TEST_F(MonitorTest, RequiresMainsAndVoltage) {
  EXPECT_FALSE(monitor.set_voltage(3.85).ok()) << "no mains";
  monitor.set_mains(true);
  EXPECT_FALSE(monitor.start_capture().ok()) << "no voltage programmed";
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  EXPECT_FALSE(monitor.start_capture().ok()) << "no load wired";
  monitor.connect_load(&load);
  EXPECT_TRUE(monitor.start_capture().ok());
}

TEST_F(MonitorTest, VoltageRangeEnforced) {
  monitor.set_mains(true);
  EXPECT_FALSE(monitor.set_voltage(0.5).ok());
  EXPECT_FALSE(monitor.set_voltage(14.0).ok());
  EXPECT_TRUE(monitor.set_voltage(0.8).ok());
  EXPECT_TRUE(monitor.set_voltage(13.5).ok());
}

TEST_F(MonitorTest, CaptureSamplesAtFiveKhz) {
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&load);
  ASSERT_TRUE(monitor.start_capture().ok());
  sim.run_for(Duration::seconds(2));
  auto capture = monitor.stop_capture();
  ASSERT_TRUE(capture.ok());
  EXPECT_EQ(capture.value().sample_count(), 10000u);
  EXPECT_NEAR(capture.value().duration().to_seconds(), 2.0, 1e-6);
}

TEST_F(MonitorTest, MeasurementTracksLoadWithinNoise) {
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&load);
  ASSERT_TRUE(monitor.start_capture().ok());
  sim.run_for(Duration::seconds(5));
  auto capture = monitor.stop_capture();
  ASSERT_TRUE(capture.ok());
  // gain 1.001 on a 160 mA load, noise sigma < 1 mA.
  EXPECT_NEAR(capture.value().mean_current_ma(), 160.16, 0.3);
  const auto cdf = capture.value().current_cdf(5);
  EXPECT_NEAR(cdf.median(), 160.16, 0.4);
  EXPECT_LT(cdf.quantile(0.99) - cdf.quantile(0.01), 6.0);
}

TEST_F(MonitorTest, ChargeIntegration) {
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(4.0).ok());
  monitor.connect_load(&load);
  ASSERT_TRUE(monitor.start_capture().ok());
  sim.run_for(Duration::seconds(3600));
  auto capture = monitor.stop_capture();
  ASSERT_TRUE(capture.ok());
  // 160 mA for 1 h = 160 mAh (x gain), energy = mAh * V.
  EXPECT_NEAR(capture.value().charge_mah(), 160.16, 0.5);
  EXPECT_NEAR(capture.value().energy_mwh(),
              capture.value().charge_mah() * 4.0, 1e-6);
}

TEST_F(MonitorTest, MainsLossAbortsCapture) {
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&load);
  ASSERT_TRUE(monitor.start_capture().ok());
  monitor.set_mains(false);
  EXPECT_FALSE(monitor.capturing());
  EXPECT_FALSE(monitor.stop_capture().ok());
  EXPECT_EQ(monitor.voltage(), 0.0) << "output stage resets on power loss";
}

TEST_F(MonitorTest, DoubleStartRejected) {
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&load);
  ASSERT_TRUE(monitor.start_capture().ok());
  EXPECT_FALSE(monitor.start_capture().ok());
}

TEST_F(MonitorTest, OvercurrentClampsAndCounts) {
  ConstantLoad hot{8000.0};  // above the 6 A limit
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&hot);
  ASSERT_TRUE(monitor.start_capture().ok());
  sim.run_for(Duration::millis(100));
  auto capture = monitor.stop_capture();
  ASSERT_TRUE(capture.ok());
  EXPECT_GT(monitor.overcurrent_events(), 0u);
  for (float s : capture.value().samples_ma()) {
    EXPECT_LE(s, monitor.spec().max_current_ma);
  }
}

TEST_F(MonitorTest, FusedCaptureStatsMatchLazyRecomputation) {
  // The synthesis pass accumulates mean/min/max while it writes the samples;
  // a Capture rebuilt from the same raw vector computes them lazily. Both
  // use the same compensated summation, so they must agree bit for bit.
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&load);
  ASSERT_TRUE(monitor.start_capture().ok());
  sim.run_for(Duration::seconds(3));
  auto capture = monitor.stop_capture();
  ASSERT_TRUE(capture.ok());
  const Capture& fused = capture.value();
  const Capture lazy{fused.start(), fused.sample_hz(), fused.voltage(),
                     fused.samples_ma()};
  EXPECT_EQ(fused.mean_current_ma(), lazy.mean_current_ma());
  EXPECT_EQ(fused.min_current_ma(), lazy.min_current_ma());
  EXPECT_EQ(fused.max_current_ma(), lazy.max_current_ma());
  // And the extrema actually bracket the sample set.
  const auto& samples = fused.samples_ma();
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  EXPECT_EQ(fused.min_current_ma(), static_cast<double>(*lo));
  EXPECT_EQ(fused.max_current_ma(), static_cast<double>(*hi));
}

TEST_F(MonitorTest, EmptyCaptureHasZeroStats) {
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&load);
  ASSERT_TRUE(monitor.start_capture().ok());
  auto capture = monitor.stop_capture();  // zero elapsed time, zero samples
  ASSERT_TRUE(capture.ok());
  EXPECT_EQ(capture.value().sample_count(), 0u);
  EXPECT_EQ(capture.value().mean_current_ma(), 0.0);
  EXPECT_EQ(capture.value().min_current_ma(), 0.0);
  EXPECT_EQ(capture.value().max_current_ma(), 0.0);
}

TEST_F(MonitorTest, CaptureTracksSegmentBoundariesOfABurstyLoad) {
  // A load that steps between levels exercises the per-block segment walk:
  // every sample must take its value from the segment its timestamp lands
  // in, with the noise floor the only deviation.
  class SteppingLoad : public Load {
   public:
    double current_ma(TimePoint t) const override {
      return (t.us() / Duration::millis(150).us()) % 2 == 0 ? 50.0 : 950.0;
    }
    std::vector<std::pair<TimePoint, double>> current_segments(
        TimePoint t0, TimePoint t1) const override {
      std::vector<std::pair<TimePoint, double>> out;
      out.emplace_back(t0, current_ma(t0));
      for (TimePoint t = t0 + Duration::millis(150); t < t1;
           t += Duration::millis(150)) {
        out.emplace_back(t, current_ma(t));
      }
      return out;
    }
  } bursty;
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&bursty);
  ASSERT_TRUE(monitor.start_capture().ok());
  sim.run_for(Duration::seconds(3));
  auto capture = monitor.stop_capture();
  ASSERT_TRUE(capture.ok());
  const auto& samples = capture.value().samples_ma();
  ASSERT_EQ(samples.size(), 15000u);
  const auto segs = bursty.current_segments(
      capture.value().start(),
      capture.value().start() + capture.value().duration());
  ASSERT_GE(segs.size(), 2u);
  std::size_t seg = 0;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const TimePoint t = capture.value().time_of(i);
    while (seg + 1 < segs.size() && segs[seg + 1].first <= t) ++seg;
    const double expected = segs[seg].second * monitor.spec().gain;
    if (std::abs(samples[i] - expected) > 6.0 * monitor.spec().noise_sigma_ma) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u)
      << "samples drifted off their timeline segment value";
}

// Property sweep: capture mean matches the load level across magnitudes.
class MonitorAccuracySweep : public ::testing::TestWithParam<double> {};

TEST_P(MonitorAccuracySweep, MeanWithinTolerance) {
  sim::Simulator sim;
  PowerMonitor monitor{sim, util::Rng{7}};
  ConstantLoad load{GetParam()};
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&load);
  ASSERT_TRUE(monitor.start_capture().ok());
  sim.run_for(Duration::seconds(2));
  auto capture = monitor.stop_capture();
  ASSERT_TRUE(capture.ok());
  EXPECT_NEAR(capture.value().mean_current_ma(),
              GetParam() * monitor.spec().gain, 0.35);
}

INSTANTIATE_TEST_SUITE_P(Loads, MonitorAccuracySweep,
                         ::testing::Values(5.0, 40.0, 160.0, 220.0, 800.0,
                                           2500.0));

TEST_F(MonitorTest, CalibrationCorrectsGainError) {
  MonsoonSpec sloppy;
  sloppy.gain = 1.02;  // 2% factory miscalibration
  sim::Simulator local_sim;
  PowerMonitor sloppy_monitor{local_sim, util::Rng{9}, sloppy};
  ConstantLoad reference{500.0};  // precision reference load
  sloppy_monitor.set_mains(true);
  ASSERT_TRUE(sloppy_monitor.set_voltage(3.85).ok());
  sloppy_monitor.connect_load(&reference);

  // Before calibration: the 2% error shows.
  ASSERT_TRUE(sloppy_monitor.start_capture().ok());
  local_sim.run_for(Duration::seconds(2));
  auto raw = sloppy_monitor.stop_capture();
  ASSERT_TRUE(raw.ok());
  EXPECT_NEAR(raw.value().mean_current_ma(), 510.0, 1.0);

  ASSERT_TRUE(sloppy_monitor.calibrate_against(500.0).ok());
  EXPECT_NEAR(sloppy_monitor.gain_correction(), 1.0 / 1.02, 0.002);

  ASSERT_TRUE(sloppy_monitor.start_capture().ok());
  local_sim.run_for(Duration::seconds(2));
  auto corrected = sloppy_monitor.stop_capture();
  ASSERT_TRUE(corrected.ok());
  EXPECT_NEAR(corrected.value().mean_current_ma(), 500.0, 0.6);
  EXPECT_EQ(sloppy_monitor.captures_taken(), 2u)
      << "the calibration sweep is not a user capture";

  sloppy_monitor.reset_calibration();
  EXPECT_DOUBLE_EQ(sloppy_monitor.gain_correction(), 1.0);
}

TEST_F(MonitorTest, CalibrationRejectsBadInputs) {
  monitor.set_mains(true);
  ASSERT_TRUE(monitor.set_voltage(3.85).ok());
  monitor.connect_load(&load);
  EXPECT_FALSE(monitor.calibrate_against(-5.0).ok());
  ASSERT_TRUE(monitor.start_capture().ok());
  EXPECT_FALSE(monitor.calibrate_against(100.0).ok()) << "mid-capture";
}

// -------------------------------------------------------- power socket ----

TEST(PowerSocketTest, DrivesMonitorMains) {
  sim::Simulator sim;
  net::Network net{sim};
  PowerMonitor monitor{sim, util::Rng{1}};
  PowerSocket socket{net, "socket.node1"};
  socket.attach_monitor(&monitor);
  EXPECT_FALSE(monitor.has_mains());
  ASSERT_TRUE(socket.turn_on().ok());
  EXPECT_TRUE(monitor.has_mains());
  ASSERT_TRUE(socket.turn_off().ok());
  EXPECT_FALSE(monitor.has_mains());
  EXPECT_EQ(socket.toggle_count(), 2u);
}

TEST(PowerSocketTest, NetworkControlProtocol) {
  sim::Simulator sim;
  net::Network net{sim};
  PowerSocket socket{net, "socket.node1"};
  net.add_link("ctrl", "socket.node1",
               net::LinkSpec::symmetric(Duration::millis(3), 20.0));
  std::string state;
  net.listen({"ctrl", 9000}, [&](const net::Message& m) { state = m.payload; });
  net::Message m;
  m.src = {"ctrl", 9000};
  m.dst = socket.address();
  m.tag = "meross.set";
  m.payload = "on";
  ASSERT_TRUE(net.send(std::move(m)).ok());
  sim.run_all();
  EXPECT_TRUE(socket.is_on());
  EXPECT_EQ(state, "on");

  net::Message off;
  off.src = {"ctrl", 9000};
  off.dst = socket.address();
  off.tag = "meross.set";
  off.payload = "off";
  ASSERT_TRUE(net.send(std::move(off)).ok());
  sim.run_all();
  EXPECT_FALSE(socket.is_on());
  EXPECT_EQ(state, "off");
}

TEST(PowerSocketTest, RedundantCommandsDoNotToggle) {
  sim::Simulator sim;
  net::Network net{sim};
  PowerSocket socket{net, "socket.node1"};
  ASSERT_TRUE(socket.turn_on().ok());
  ASSERT_TRUE(socket.turn_on().ok());
  EXPECT_EQ(socket.toggle_count(), 1u);
}

}  // namespace
}  // namespace blab::hw
