// Chunked capture store: codec losslessness, tier ladder edges, retention
// TTLs, LRU cache behavior, and the query API's footer/tier fast paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/trace_io.hpp"
#include "hw/power_monitor.hpp"
#include "store/capture_store.hpp"
#include "store/chunked_capture.hpp"
#include "store/codec.hpp"
#include "util/rng.hpp"

namespace {

using blab::hw::Capture;
using blab::store::CaptureId;
using blab::store::CaptureStore;
using blab::store::ChunkedCapture;
using blab::store::RetentionPolicy;
using blab::util::Duration;
using blab::util::ErrorCode;
using blab::util::TimePoint;

/// A bounded random walk around `base` mA — realistic capture content where
/// consecutive samples are close, like a real Monsoon trace.
std::vector<float> walk_samples(std::uint64_t seed, std::size_t n,
                                double base = 300.0) {
  blab::util::Rng rng{seed};
  std::vector<float> samples;
  samples.reserve(n);
  double v = base;
  for (std::size_t i = 0; i < n; ++i) {
    v = std::clamp(v + rng.uniform(-8.0, 8.0), 5.0, 4500.0);
    samples.push_back(static_cast<float>(v));
  }
  return samples;
}

Capture make_capture(std::uint64_t seed, std::size_t n, double hz = 5000.0,
                     double voltage = 3.85) {
  return Capture{TimePoint::epoch(), hz, voltage, walk_samples(seed, n)};
}

// ------------------------------------------------------------------------
// Chunk codec and footers.
// ------------------------------------------------------------------------

TEST(ChunkedCapture, RoundTripIsLossless) {
  for (std::size_t n : {1u, 2u, 4095u, 4096u, 4097u, 10000u}) {
    const Capture original = make_capture(n, n);
    const ChunkedCapture cc = ChunkedCapture::encode(original);
    auto decoded = cc.decode();
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    ASSERT_EQ(decoded.value().sample_count(), n);
    EXPECT_EQ(decoded.value().samples_ma(), original.samples_ma())
        << "n=" << n << " did not round-trip bit-exactly";
    EXPECT_EQ(decoded.value().start(), original.start());
    EXPECT_DOUBLE_EQ(decoded.value().sample_hz(), original.sample_hz());
    EXPECT_DOUBLE_EQ(decoded.value().voltage(), original.voltage());
  }
}

TEST(ChunkedCapture, EmptyCaptureIsRepresentable) {
  const Capture empty{TimePoint::epoch(), 5000.0, 3.85, {}};
  const ChunkedCapture cc = ChunkedCapture::encode(empty);
  EXPECT_EQ(cc.sample_count(), 0u);
  EXPECT_EQ(cc.chunk_count(), 0u);
  EXPECT_TRUE(cc.tiers().empty());
  EXPECT_DOUBLE_EQ(cc.mean_ma(), 0.0);
  EXPECT_DOUBLE_EQ(cc.energy_mwh(), 0.0);
  auto decoded = cc.decode();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sample_count(), 0u);
  auto reloaded = ChunkedCapture::deserialize(cc.serialize());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message;
  EXPECT_EQ(reloaded.value().sample_count(), 0u);
}

TEST(ChunkedCapture, SingleSampleTailChunk) {
  const Capture original = make_capture(9, 9);
  const ChunkedCapture cc = ChunkedCapture::encode(original, 4);
  ASSERT_EQ(cc.chunk_count(), 3u);
  EXPECT_EQ(cc.footer(0).count, 4u);
  EXPECT_EQ(cc.footer(1).count, 4u);
  EXPECT_EQ(cc.footer(2).count, 1u);
  auto tail = cc.decode_chunk(2);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail.value().size(), 1u);
  EXPECT_EQ(tail.value()[0], original.samples_ma()[8]);
  EXPECT_EQ(cc.footer(2).min_ma, original.samples_ma()[8]);
  EXPECT_EQ(cc.footer(2).max_ma, original.samples_ma()[8]);
}

TEST(ChunkedCapture, FooterSummariesMatchSequentialScan) {
  const Capture original = make_capture(77, 10000);
  const ChunkedCapture cc = ChunkedCapture::encode(original);
  double sum = 0.0;
  float lo = original.samples_ma()[0];
  float hi = lo;
  for (float v : original.samples_ma()) {
    sum += static_cast<double>(v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double mean = sum / 10000.0;
  // Chunk partial sums re-associate the addition; last-ulp drift only.
  EXPECT_NEAR(cc.mean_ma(), mean, 1e-6 * std::abs(mean));
  EXPECT_EQ(cc.min_ma(), static_cast<double>(lo));
  EXPECT_EQ(cc.max_ma(), static_cast<double>(hi));
  EXPECT_NEAR(cc.energy_mwh(), original.energy_mwh(),
              1e-6 * std::abs(original.energy_mwh()));
}

// ------------------------------------------------------------------------
// Tier ladder.
// ------------------------------------------------------------------------

TEST(ChunkedCapture, TierLadderAtExactBoundaries) {
  // 10000 samples at 5 kHz: 50 Hz tier = factor 100 -> 100 buckets,
  // 1 Hz tier = factor 5000 -> 2 buckets, no partial tail anywhere.
  const ChunkedCapture cc = ChunkedCapture::encode(make_capture(1, 10000));
  ASSERT_EQ(cc.tiers().size(), 2u);
  EXPECT_EQ(cc.tiers()[0].factor, 100u);
  EXPECT_DOUBLE_EQ(cc.tiers()[0].rate_hz, 50.0);
  EXPECT_EQ(cc.tiers()[0].buckets(), 100u);
  EXPECT_EQ(cc.tiers()[1].factor, 5000u);
  EXPECT_DOUBLE_EQ(cc.tiers()[1].rate_hz, 1.0);
  EXPECT_EQ(cc.tiers()[1].buckets(), 2u);
}

TEST(ChunkedCapture, TierPartialTailBucket) {
  // One sample past the boundary adds a one-sample bucket to every tier.
  const Capture original = make_capture(2, 10001);
  const ChunkedCapture cc = ChunkedCapture::encode(original);
  ASSERT_EQ(cc.tiers().size(), 2u);
  EXPECT_EQ(cc.tiers()[0].buckets(), 101u);
  EXPECT_EQ(cc.tiers()[1].buckets(), 3u);
  const float last = original.samples_ma()[10000];
  EXPECT_EQ(cc.tiers()[0].mean_ma.back(), last);
  EXPECT_EQ(cc.tiers()[0].min_ma.back(), last);
  EXPECT_EQ(cc.tiers()[0].max_ma.back(), last);
}

TEST(ChunkedCapture, TiersAtOrAboveRawRateAreSkipped) {
  // At 50 Hz raw, the 50 Hz target is redundant; only 1 Hz survives.
  const ChunkedCapture at50 =
      ChunkedCapture::encode(make_capture(3, 500, /*hz=*/50.0));
  ASSERT_EQ(at50.tiers().size(), 1u);
  EXPECT_EQ(at50.tiers()[0].factor, 50u);
  EXPECT_DOUBLE_EQ(at50.tiers()[0].rate_hz, 1.0);
  // At 1 Hz raw there is nothing left to downsample.
  const ChunkedCapture at1 =
      ChunkedCapture::encode(make_capture(4, 10, /*hz=*/1.0));
  EXPECT_TRUE(at1.tiers().empty());
  EXPECT_EQ(at1.finest_tier(), nullptr);
}

TEST(ChunkedCapture, TierMeansAgreeWithRawWindows) {
  const Capture original = make_capture(5, 10000);
  const ChunkedCapture cc = ChunkedCapture::encode(original);
  const auto& tier = cc.tiers()[0];  // 50 Hz, factor 100
  for (std::size_t b : {0u, 37u, 99u}) {
    double sum = 0.0;
    for (std::size_t i = b * 100; i < (b + 1) * 100; ++i) {
      sum += static_cast<double>(original.samples_ma()[i]);
    }
    EXPECT_NEAR(tier.mean_ma[b], sum / 100.0, 1e-3) << "bucket " << b;
  }
}

// ------------------------------------------------------------------------
// Serialization.
// ------------------------------------------------------------------------

TEST(ChunkedCapture, ReencodeIsByteIdentical) {
  const Capture original = make_capture(6, 9001);
  const std::string first = ChunkedCapture::encode(original).serialize();
  const std::string second = ChunkedCapture::encode(original).serialize();
  EXPECT_EQ(first, second);
}

TEST(ChunkedCapture, SerializeDeserializeRoundTrip) {
  const Capture original = make_capture(7, 8193);
  const ChunkedCapture cc = ChunkedCapture::encode(original);
  auto reloaded = ChunkedCapture::deserialize(cc.serialize());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message;
  const ChunkedCapture& rc = reloaded.value();
  EXPECT_EQ(rc.sample_count(), cc.sample_count());
  EXPECT_EQ(rc.chunk_count(), cc.chunk_count());
  EXPECT_EQ(rc.tiers().size(), cc.tiers().size());
  EXPECT_EQ(rc.serialize(), cc.serialize());
  auto decoded = rc.decode();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().samples_ma(), original.samples_ma());
}

TEST(ChunkedCapture, PurgedRawSurvivesSerialization) {
  ChunkedCapture cc = ChunkedCapture::encode(make_capture(8, 9000));
  const double mean = cc.mean_ma();
  cc.drop_raw();
  auto reloaded = ChunkedCapture::deserialize(cc.serialize());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE(reloaded.value().raw_available());
  EXPECT_DOUBLE_EQ(reloaded.value().mean_ma(), mean);
  EXPECT_EQ(reloaded.value().decode().error().code,
            ErrorCode::kFailedPrecondition);
}

TEST(ChunkedCapture, DeserializeRejectsMalformedBytes) {
  const std::string good = ChunkedCapture::encode(make_capture(9, 5000))
                               .serialize();
  EXPECT_FALSE(ChunkedCapture::deserialize("").ok());
  EXPECT_FALSE(ChunkedCapture::deserialize("XXXX" + good.substr(4)).ok());
  EXPECT_FALSE(
      ChunkedCapture::deserialize(std::string_view{good}.substr(
          0, good.size() / 2)).ok());
  EXPECT_FALSE(ChunkedCapture::deserialize(good + std::string(1, '\0')).ok());
}

// ----------------------------------------------- adversarial codec input ----

TEST(Codec, VarintRejectsTruncatedOverlongAndOverflowing) {
  using blab::store::get_varint;
  using blab::store::put_varint;
  std::uint64_t v = 0;

  // Truncated: continuation bit set on the last available byte.
  const std::string truncated{"\x80", 1};
  EXPECT_EQ(get_varint(truncated.data(),
                       truncated.data() + truncated.size(), v),
            nullptr);

  // Overlong: a non-canonical trailing zero byte ("\x80\x00" also encodes 0).
  const std::string overlong{"\x80\x00", 2};
  EXPECT_EQ(get_varint(overlong.data(), overlong.data() + overlong.size(), v),
            nullptr);

  // Overflowing: 10th byte carries bits above bit 63.
  std::string overflow(9, '\xFF');
  overflow.push_back('\x02');
  EXPECT_EQ(get_varint(overflow.data(), overflow.data() + overflow.size(), v),
            nullptr);

  // The canonical max encoding (2^64-1) still decodes.
  std::string max_enc;
  put_varint(max_enc, ~0ULL);
  EXPECT_NE(get_varint(max_enc.data(), max_enc.data() + max_enc.size(), v),
            nullptr);
  EXPECT_EQ(v, ~0ULL);

  // Every canonical encoding round-trips to the exact same bytes.
  for (const std::uint64_t val :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 1ULL << 32,
        ~0ULL >> 1, ~0ULL}) {
    std::string enc;
    put_varint(enc, val);
    std::uint64_t back = 0;
    const char* p = get_varint(enc.data(), enc.data() + enc.size(), back);
    ASSERT_EQ(p, enc.data() + enc.size());
    EXPECT_EQ(back, val);
  }
}

TEST(Codec, DecodeSamplesRejectsHostileCounts) {
  using blab::store::decode_samples;
  using blab::store::encode_samples;
  const std::vector<float> samples{1.0f, 1.5f, 2.0f, -3.25f};
  const std::string bytes = encode_samples(samples.data(), samples.size());

  std::vector<float> out;
  // A count larger than the payload could possibly hold is rejected before
  // any allocation (each sample is at least one varint byte).
  EXPECT_FALSE(decode_samples(bytes, 1u << 31, out));
  EXPECT_TRUE(out.empty());

  // Off-by-one counts fail: trailing bytes and truncation are both errors.
  EXPECT_FALSE(decode_samples(bytes, samples.size() - 1, out));
  EXPECT_FALSE(decode_samples(bytes, samples.size() + 1, out));

  // Non-canonical payload bytes fail even when the count fits.
  EXPECT_FALSE(decode_samples(std::string{"\x80\x00", 2}, 1, out));

  // And the honest decode still works and re-encodes byte-identically.
  out.clear();
  ASSERT_TRUE(decode_samples(bytes, samples.size(), out));
  EXPECT_EQ(out, samples);
  EXPECT_EQ(encode_samples(out.data(), out.size()), bytes);
}

TEST(ChunkedCapture, DeserializeRejectsNonCanonicalHeaderFields) {
  const auto cc = ChunkedCapture::encode(make_capture(11, 300));
  const std::string good = cc.serialize();

  // Accepted bytes must re-serialize identically (the fuzz invariant).
  const auto back = ChunkedCapture::deserialize(good);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().serialize(), good);

  // Single-byte corruption anywhere must never crash; it either fails with
  // a typed error or yields a capture that still re-serializes losslessly.
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x10);
    const auto r = ChunkedCapture::deserialize(bad);
    if (r.ok()) {
      EXPECT_EQ(r.value().serialize(), bad) << "byte " << i;
    }
  }
}

TEST(ChunkedCapture, CompressionBeatsCsvByFourX) {
  const Capture original = make_capture(10, 25000);
  const ChunkedCapture cc = ChunkedCapture::encode(original);
  std::ostringstream csv;
  blab::analysis::write_capture_csv(original, csv);
  EXPECT_LE(cc.byte_size() * 4, csv.str().size())
      << "chunked " << cc.byte_size() << " B vs CSV " << csv.str().size()
      << " B";
}

TEST(TraceIo, ChunkedAdaptersRoundTrip) {
  const Capture original = make_capture(11, 6000);
  std::ostringstream os;
  blab::analysis::write_capture_chunked(original, os);
  std::istringstream is{os.str()};
  auto reloaded = blab::analysis::read_capture_chunked_stream(is);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message;
  EXPECT_EQ(reloaded.value().samples_ma(), original.samples_ma());
  EXPECT_DOUBLE_EQ(reloaded.value().sample_hz(), original.sample_hz());
  EXPECT_DOUBLE_EQ(reloaded.value().voltage(), original.voltage());
  EXPECT_EQ(reloaded.value().start(), original.start());
}

// ------------------------------------------------------------------------
// CaptureStore: lookup and queries.
// ------------------------------------------------------------------------

TEST(CaptureStore, WorkspacesAndListingsAreSorted) {
  CaptureStore store;
  const auto b1 = store.append("job-b", "m0", make_capture(20, 100),
                               TimePoint::epoch());
  const auto a1 = store.append("job-a", "m1", make_capture(21, 100),
                               TimePoint::epoch());
  const auto a2 = store.append("job-a", "m2", make_capture(22, 100),
                               TimePoint::epoch());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.workspaces(),
            (std::vector<std::string>{"job-a", "job-b"}));
  EXPECT_EQ(store.list("job-a"), (std::vector<CaptureId>{a1, a2}));
  EXPECT_EQ(store.list("job-b"), (std::vector<CaptureId>{b1}));
  EXPECT_LT(a1.seq, a2.seq);
  EXPECT_EQ(store.name_of(a2), "m2");
  EXPECT_FALSE(store.contains(CaptureId{"job-c", 99}));
  EXPECT_EQ(store.mean_ma(CaptureId{"job-c", 99}).error().code,
            ErrorCode::kNotFound);
}

TEST(CaptureStore, RangeReturnsExactSubrange) {
  CaptureStore store;
  const Capture original = make_capture(23, 10000);  // 2 s at 5 kHz
  const auto id =
      store.append("job", "m", original, TimePoint::epoch());
  auto slice = store.range(id, TimePoint::epoch() + Duration::seconds(0.25),
                           TimePoint::epoch() + Duration::seconds(0.5));
  ASSERT_TRUE(slice.ok()) << slice.error().message;
  ASSERT_EQ(slice.value().sample_count(), 1250u);
  for (std::size_t i = 0; i < 1250; ++i) {
    ASSERT_EQ(slice.value().samples_ma()[i], original.samples_ma()[1250 + i])
        << "sample " << i;
  }
  EXPECT_EQ(slice.value().start(),
            TimePoint::epoch() + Duration::seconds(0.25));
  // Out-of-bounds clamps; inverted range is an error.
  auto whole = store.range(id, TimePoint::epoch() - Duration::seconds(5),
                           TimePoint::epoch() + Duration::seconds(99));
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole.value().samples_ma(), original.samples_ma());
  EXPECT_EQ(store.range(id, TimePoint::epoch() + Duration::seconds(1),
                        TimePoint::epoch()).error().code,
            ErrorCode::kInvalidArgument);
}

TEST(CaptureStore, SummaryQueriesNeverDecodeRawChunks) {
  CaptureStore store;
  const Capture original = make_capture(24, 10000);
  const auto id = store.append("job", "m", original, TimePoint::epoch());

  auto whole = store.aggregate(id, Duration::seconds(60));
  ASSERT_TRUE(whole.ok());
  ASSERT_EQ(whole.value().size(), 1u);
  EXPECT_NEAR(whole.value()[0].mean_ma, original.mean_current_ma(),
              1e-6 * original.mean_current_ma());
  EXPECT_EQ(whole.value()[0].samples, 10000u);

  auto cdf = store.percentiles(id);
  ASSERT_TRUE(cdf.ok());
  EXPECT_EQ(cdf.value().count(), 100u);  // 50 Hz tier bucket means

  auto energy = store.energy_mwh(id);
  ASSERT_TRUE(energy.ok());
  EXPECT_NEAR(energy.value(), original.energy_mwh(),
              1e-6 * original.energy_mwh());

  // The acceptance bar: summaries come from footers/tiers alone.
  EXPECT_EQ(store.stats().raw_chunk_decodes, 0u);
  EXPECT_EQ(store.stats().tier_queries, 3u);  // aggregate + cdf + energy
  EXPECT_TRUE(store.mean_ma(id).ok());
  EXPECT_EQ(store.stats().tier_queries, 4u);
  EXPECT_EQ(store.stats().raw_chunk_decodes, 0u);
}

TEST(CaptureStore, CatalogFiltersByStoredAtAndSortsById) {
  CaptureStore store;
  const auto b = store.append("job-b", "m0", make_capture(40, 100),
                              TimePoint::epoch() + Duration::minutes(1));
  const auto a = store.append("job-a", "m1", make_capture(41, 100),
                              TimePoint::epoch() + Duration::minutes(5));
  const auto c = store.append("job-c", "m2", make_capture(42, 100),
                              TimePoint::epoch() + Duration::minutes(9));
  // Ascending CaptureId order regardless of insertion order — the rollup
  // engine's determinism contract leans on this.
  EXPECT_EQ(store.catalog(TimePoint::epoch(), TimePoint::max()),
            (std::vector<CaptureId>{a, b, c}));
  // [t0, t1) filters on stored_at.
  EXPECT_EQ(store.catalog(TimePoint::epoch(),
                          TimePoint::epoch() + Duration::minutes(5)),
            (std::vector<CaptureId>{b}));
  EXPECT_EQ(store.catalog(TimePoint::epoch() + Duration::minutes(5),
                          TimePoint::max()),
            (std::vector<CaptureId>{a, c}));
  EXPECT_TRUE(store.catalog(TimePoint::epoch() + Duration::minutes(30),
                            TimePoint::max())
                  .empty());
}

TEST(CaptureStore, SummaryServesFooterAggregatesWithoutRawDecodes) {
  CaptureStore store;
  const Capture original = make_capture(43, 10000);  // 2 s at 5 kHz
  const auto stored_at = TimePoint::epoch() + Duration::seconds(7);
  const auto id = store.append("job", "m", original, stored_at);
  const auto summary = store.summary(id);
  ASSERT_TRUE(summary.ok()) << summary.error().message;
  const auto& s = summary.value();
  EXPECT_EQ(s.id, id);
  EXPECT_EQ(s.name, "m");
  EXPECT_EQ(s.stored_at, stored_at);
  EXPECT_EQ(s.start, original.start());
  EXPECT_EQ(s.samples, 10000u);
  EXPECT_DOUBLE_EQ(s.sample_hz, original.sample_hz());
  EXPECT_DOUBLE_EQ(s.voltage, original.voltage());
  EXPECT_NEAR(s.mean_ma, original.mean_current_ma(),
              1e-6 * original.mean_current_ma());
  EXPECT_NEAR(s.energy_mwh, original.energy_mwh(),
              1e-6 * original.energy_mwh());
  EXPECT_GT(s.charge_mah, 0.0);
  EXPECT_LE(s.min_ma, s.max_ma);
  // The summary must agree exactly with the individual footer queries the
  // rollup-accuracy oracle chains to.
  EXPECT_EQ(s.energy_mwh, store.energy_mwh(id).value());
  EXPECT_EQ(s.mean_ma, store.mean_ma(id).value());
  EXPECT_EQ(store.stats().raw_chunk_decodes, 0u);
  EXPECT_EQ(store.summary(CaptureId{"ghost", 1}).error().code,
            ErrorCode::kNotFound);
}

TEST(CaptureStore, WindowedAggregateMatchesRawMeans) {
  CaptureStore store;
  const Capture original = make_capture(25, 10000);  // 2 s at 5 kHz
  const auto id = store.append("job", "m", original, TimePoint::epoch());
  auto buckets = store.aggregate(id, Duration::seconds(0.1));
  ASSERT_TRUE(buckets.ok()) << buckets.error().message;
  ASSERT_EQ(buckets.value().size(), 20u);  // 2 s / 100 ms
  for (std::size_t b : {0u, 7u, 19u}) {
    double sum = 0.0;
    for (std::size_t i = b * 500; i < (b + 1) * 500; ++i) {
      sum += static_cast<double>(original.samples_ma()[i]);
    }
    EXPECT_NEAR(buckets.value()[b].mean_ma, sum / 500.0, 1e-2)
        << "bucket " << b;
    EXPECT_EQ(buckets.value()[b].samples, 500u);
  }
  EXPECT_EQ(store.stats().raw_chunk_decodes, 0u);
}

TEST(CaptureStore, WindowFinerThanFinestTierIsUnsupported) {
  CaptureStore store;
  const auto id =
      store.append("job", "m", make_capture(26, 10000), TimePoint::epoch());
  // 1 ms windows need the raw 5 kHz stream, not the 50 Hz tier.
  auto result = store.aggregate(id, Duration::millis(1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnsupported);
  EXPECT_EQ(store.aggregate(id, Duration::zero()).error().code,
            ErrorCode::kInvalidArgument);
}

// ------------------------------------------------------------------------
// Retention.
// ------------------------------------------------------------------------

TEST(CaptureStore, TtlPurgesRawFirstThenSummaries) {
  RetentionPolicy policy;
  policy.raw_ttl = Duration::minutes(30);
  policy.summary_ttl = Duration::minutes(240);
  CaptureStore store{policy};
  const Capture original = make_capture(27, 10000);
  const auto id = store.append("job", "m", original, TimePoint::epoch());

  // Mid-life: a raw query works, then retention crosses the raw TTL and the
  // same query degrades to an explicit precondition failure while every
  // summary keeps answering.
  ASSERT_TRUE(store.range(id, TimePoint::epoch(),
                          TimePoint::epoch() + Duration::seconds(1)).ok());
  EXPECT_EQ(store.run_retention(TimePoint::epoch() + Duration::minutes(29)),
            0u);
  EXPECT_EQ(store.run_retention(TimePoint::epoch() + Duration::minutes(31)),
            1u);
  EXPECT_EQ(store.stats().raw_purges, 1u);
  auto range = store.range(id, TimePoint::epoch(),
                           TimePoint::epoch() + Duration::seconds(1));
  ASSERT_FALSE(range.ok());
  EXPECT_EQ(range.error().code, ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(store.contains(id));
  EXPECT_TRUE(store.percentiles(id).ok());
  EXPECT_NEAR(store.mean_ma(id).value(), original.mean_current_ma(),
              1e-6 * original.mean_current_ma());
  ASSERT_TRUE(store.aggregate(id, Duration::seconds(0.1)).ok());

  // A second raw purge pass is a no-op; the summary TTL erases the record.
  EXPECT_EQ(store.run_retention(TimePoint::epoch() + Duration::minutes(60)),
            0u);
  EXPECT_EQ(store.run_retention(TimePoint::epoch() + Duration::minutes(241)),
            1u);
  EXPECT_EQ(store.stats().record_purges, 1u);
  EXPECT_FALSE(store.contains(id));
  EXPECT_EQ(store.percentiles(id).error().code, ErrorCode::kNotFound);
}

TEST(CaptureStore, WorkspacePurgeLeavesOtherJobsRaw) {
  CaptureStore store;
  const auto a =
      store.append("job-a", "m", make_capture(28, 9000), TimePoint::epoch());
  const auto b =
      store.append("job-b", "m", make_capture(29, 9000), TimePoint::epoch());
  EXPECT_EQ(store.drop_workspace_raw("job-a"), 1u);
  EXPECT_EQ(store.range(a, TimePoint::epoch(),
                        TimePoint::epoch() + Duration::seconds(1))
                .error()
                .code,
            ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(store.range(b, TimePoint::epoch(),
                          TimePoint::epoch() + Duration::seconds(1)).ok());
  // Repeat purge finds nothing left to drop.
  EXPECT_EQ(store.drop_workspace_raw("job-a"), 0u);
}

// ------------------------------------------------------------------------
// LRU cache.
// ------------------------------------------------------------------------

TEST(CaptureStore, LruEvictsUnderInterleavedReaders) {
  // Two 3-chunk captures sharing a 2-chunk cache: interleaved readers force
  // evictions but never wrong data.
  CaptureStore store{RetentionPolicy{}, /*cache_chunks=*/2};
  const Capture ca = make_capture(30, 10000);
  const Capture cb = make_capture(31, 10000);
  const auto a = store.append("job-a", "m", ca, TimePoint::epoch());
  const auto b = store.append("job-b", "m", cb, TimePoint::epoch());
  for (int round = 0; round < 3; ++round) {
    for (double t0 : {0.0, 0.9, 1.8}) {
      auto sa = store.range(a, TimePoint::epoch() + Duration::seconds(t0),
                            TimePoint::epoch() + Duration::seconds(t0 + 0.1));
      auto sb = store.range(b, TimePoint::epoch() + Duration::seconds(t0),
                            TimePoint::epoch() + Duration::seconds(t0 + 0.1));
      ASSERT_TRUE(sa.ok());
      ASSERT_TRUE(sb.ok());
      const auto first = static_cast<std::size_t>(std::ceil(t0 * 5000.0));
      ASSERT_FALSE(sa.value().samples_ma().empty());
      EXPECT_EQ(sa.value().samples_ma()[0], ca.samples_ma()[first]);
      EXPECT_EQ(sb.value().samples_ma()[0], cb.samples_ma()[first]);
    }
  }
  EXPECT_GT(store.stats().cache_evictions, 0u);
  EXPECT_GT(store.stats().raw_chunk_decodes, store.stats().cache_evictions);
}

TEST(CaptureStore, RepeatedReadsHitTheCache) {
  CaptureStore store;
  const auto id =
      store.append("job", "m", make_capture(32, 5000), TimePoint::epoch());
  const auto t1 = TimePoint::epoch() + Duration::seconds(1);
  ASSERT_TRUE(store.range(id, TimePoint::epoch(), t1).ok());
  const auto decodes = store.stats().raw_chunk_decodes;
  EXPECT_GT(decodes, 0u);
  ASSERT_TRUE(store.range(id, TimePoint::epoch(), t1).ok());
  EXPECT_EQ(store.stats().raw_chunk_decodes, decodes);
  EXPECT_GT(store.stats().cache_hits, 0u);
}

TEST(CaptureStore, ReencodeInStoreIsDeterministic) {
  // Appending the same capture into two stores yields byte-identical
  // archives — the property DST leans on for digest stability.
  const Capture original = make_capture(33, 9001);
  CaptureStore s1;
  CaptureStore s2;
  const auto id1 = s1.append("job", "m", original, TimePoint::epoch());
  const auto id2 = s2.append("job", "m", original, TimePoint::epoch());
  ASSERT_NE(s1.find(id1), nullptr);
  ASSERT_NE(s2.find(id2), nullptr);
  EXPECT_EQ(s1.find(id1)->serialize(), s2.find(id2)->serialize());
}

}  // namespace
