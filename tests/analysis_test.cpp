// Unit tests for the analysis/report module (figure and table emitters).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/report.hpp"
#include "analysis/software_estimator.hpp"
#include "analysis/trace_io.hpp"
#include "util/rng.hpp"

namespace blab::analysis {
namespace {

util::Cdf make_cdf(double mean, std::uint64_t seed = 1) {
  util::Rng rng{seed};
  util::Cdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.normal(mean, mean * 0.1));
  return cdf;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CdfFigureTest, PrintsQuantileRows) {
  CdfFigure fig{"Fig 2: current", "mA"};
  fig.add_series("direct", make_cdf(160.0, 1));
  fig.add_series("relay", make_cdf(161.0, 2));
  std::ostringstream os;
  fig.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig 2: current"), std::string::npos);
  EXPECT_NE(out.find("direct"), std::string::npos);
  EXPECT_NE(out.find("p50"), std::string::npos);
  EXPECT_NE(out.find("mean"), std::string::npos);
  EXPECT_EQ(fig.series().size(), 2u);
}

TEST(CdfFigureTest, EmptySeriesRendersDash) {
  CdfFigure fig{"empty", "x"};
  fig.add_series("none", util::Cdf{});
  std::ostringstream os;
  fig.print(os);
  EXPECT_NE(os.str().find("-"), std::string::npos);
}

TEST(CdfFigureTest, CsvRoundTrip) {
  CdfFigure fig{"t", "ma"};
  fig.add_series("a", make_cdf(100.0));
  const std::string path = "/tmp/blab_cdf_test.csv";
  ASSERT_TRUE(fig.write_csv(path, 10));
  const std::string csv = slurp(path);
  EXPECT_NE(csv.find("series,ma,cdf"), std::string::npos);
  // Header + 10 points.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 11);
  std::remove(path.c_str());
}

TEST(BarFigureTest, PrintsMeanAndStddev) {
  BarFigure fig{"Fig 3: discharge", "mAh"};
  fig.add_bar("Brave", 30.2, 1.5);
  fig.add_bar("Firefox", 44.8, 2.1);
  std::ostringstream os;
  fig.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Brave"), std::string::npos);
  EXPECT_NE(out.find("30.20"), std::string::npos);
  EXPECT_NE(out.find("2.10"), std::string::npos);
}

TEST(BarFigureTest, CsvHasOneRowPerBar) {
  BarFigure fig{"t", "mAh"};
  fig.add_bar("a", 1.0, 0.1);
  fig.add_bar("b", 2.0, 0.2);
  const std::string path = "/tmp/blab_bar_test.csv";
  ASSERT_TRUE(fig.write_csv(path));
  const std::string csv = slurp(path);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  std::remove(path.c_str());
}

TEST(TableReportTest, PrintsRows) {
  TableReport table{"Table 2", {"location", "D", "U", "L"}};
  table.add_row({"Japan", "9.68", "7.76", "239.38"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("Japan"), std::string::npos);
  EXPECT_NE(os.str().find("239.38"), std::string::npos);
  const std::string path = "/tmp/blab_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));
  EXPECT_NE(slurp(path).find("Japan,9.68"), std::string::npos);
  std::remove(path.c_str());
}

// -------------------------------------------------- software estimator ----

/// Build a synthetic capture + trace from a known linear ground truth.
struct SyntheticWorkload {
  hw::Capture capture;
  ResourceTrace trace{util::TimePoint::epoch(), util::Duration::millis(500)};
};

SyntheticWorkload make_workload(const std::array<double, 4>& beta,
                                std::uint64_t seed, std::size_t windows) {
  util::Rng rng{seed};
  SyntheticWorkload w;
  std::vector<float> samples;
  const double hz = 1000.0;
  for (std::size_t i = 0; i < windows; ++i) {
    ResourceSample s;
    s.cpu_util = rng.uniform(0.0, 0.6);
    s.screen_on = rng.chance(0.7) ? 1.0 : 0.0;
    s.radio_active = rng.chance(0.4) ? 1.0 : 0.0;
    w.trace.add(s);
    const double ma = beta[0] + beta[1] * s.cpu_util + beta[2] * s.screen_on +
                      beta[3] * s.radio_active;
    for (int k = 0; k < 500; ++k) {  // 0.5 s at 1 kHz
      samples.push_back(static_cast<float>(ma + rng.normal(0.0, 1.0)));
    }
  }
  w.capture = hw::Capture{util::TimePoint::epoch(), hz, 3.85,
                          std::move(samples)};
  return w;
}

TEST(SoftwareEstimatorTest, RecoversLinearGroundTruth) {
  const std::array<double, 4> beta{30.0, 400.0, 90.0, 25.0};
  const auto cal = make_workload(beta, 11, 120);
  SoftwareEstimator est;
  ASSERT_TRUE(est.calibrate(cal.capture, cal.trace).ok());
  // The ridge term trades a small coefficient bias for robustness.
  EXPECT_NEAR(est.model().beta[0], 30.0, 6.0);
  EXPECT_NEAR(est.model().beta[1], 400.0, 16.0);
  EXPECT_NEAR(est.model().beta[2], 90.0, 5.0);
  EXPECT_NEAR(est.model().beta[3], 25.0, 5.0);
  EXPECT_LT(est.model().training_rmse_ma, 3.0);

  // Held-out workload from the same ground truth: near-zero error.
  const auto eval = make_workload(beta, 99, 80);
  auto result = est.estimate(eval.trace);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(SoftwareEstimator::relative_error(result.value(), eval.capture),
            0.02);
}

TEST(SoftwareEstimatorTest, RequiresCalibration) {
  SoftwareEstimator est;
  ResourceTrace trace{util::TimePoint::epoch(), util::Duration::millis(500)};
  trace.add({0.1, 1.0, 0.0});
  EXPECT_FALSE(est.estimate(trace).ok());
  EXPECT_FALSE(est.calibrated());
}

TEST(SoftwareEstimatorTest, ShortTraceRejected) {
  SoftwareEstimator est;
  const auto w = make_workload({30, 400, 90, 25}, 1, 4);
  EXPECT_FALSE(est.calibrate(w.capture, w.trace).ok());
}

TEST(SoftwareEstimatorTest, ConstantCountersStillSolvable) {
  // Screen on the whole time: collinear with the intercept; ridge keeps the
  // system solvable and predictions sane.
  util::Rng rng{5};
  ResourceTrace trace{util::TimePoint::epoch(), util::Duration::millis(500)};
  std::vector<float> samples;
  for (int i = 0; i < 60; ++i) {
    ResourceSample s;
    s.cpu_util = rng.uniform(0.05, 0.5);
    s.screen_on = 1.0;
    s.radio_active = 0.0;
    trace.add(s);
    const double ma = 100.0 + 300.0 * s.cpu_util;
    for (int k = 0; k < 500; ++k) samples.push_back(static_cast<float>(ma));
  }
  hw::Capture capture{util::TimePoint::epoch(), 1000.0, 3.85,
                      std::move(samples)};
  SoftwareEstimator est;
  ASSERT_TRUE(est.calibrate(capture, trace).ok());
  auto result = est.estimate(trace);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(SoftwareEstimator::relative_error(result.value(), capture), 0.03);
}

TEST(SoftwareEstimatorTest, EstimateChargeIntegratesOverTrace) {
  const std::array<double, 4> beta{50.0, 0.0, 0.0, 0.0};
  const auto w = make_workload(beta, 3, 60);  // 30 s at ~50 mA
  SoftwareEstimator est;
  ASSERT_TRUE(est.calibrate(w.capture, w.trace).ok());
  auto result = est.estimate(w.trace);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().charge_mah, 50.0 * 30.0 / 3600.0, 0.05);
}

// Property: the estimator never goes negative, whatever the counters say.
class EstimatorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimatorSweep, PredictionsNonNegative) {
  const auto cal = make_workload({20.0, 350.0, 80.0, 30.0}, GetParam(), 60);
  SoftwareEstimator est;
  ASSERT_TRUE(est.calibrate(cal.capture, cal.trace).ok());
  util::Rng rng{GetParam() ^ 0xF00D};
  ResourceTrace wild{util::TimePoint::epoch(), util::Duration::millis(500)};
  for (int i = 0; i < 50; ++i) {
    wild.add({rng.uniform(0.0, 1.0), rng.chance(0.5) ? 1.0 : 0.0,
              rng.chance(0.5) ? 1.0 : 0.0});
  }
  auto result = est.estimate(wild);
  ASSERT_TRUE(result.ok());
  for (double ma : result.value().per_sample_ma) EXPECT_GE(ma, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorSweep,
                         ::testing::Values(2, 4, 8, 16, 32));

// ------------------------------------------------ malformed trace input ----
// Pins the trace_io rejection behavior the fuzz harness relies on: every
// malformed shape is a typed kInvalidArgument with a stable message prefix,
// never a throw or a best-effort parse.

struct RejectCase {
  const char* label;
  const char* body;           ///< appended after the Monsoon header
  const char* message_prefix; ///< start of the expected error message
};

class TraceIoRejects : public ::testing::TestWithParam<RejectCase> {};

TEST_P(TraceIoRejects, TypedErrorWithStableMessage) {
  std::istringstream is{std::string{"time_s,current_mA,voltage\n"} +
                        GetParam().body};
  const auto r = read_capture_csv_stream(is);
  ASSERT_FALSE(r.ok()) << GetParam().label;
  EXPECT_EQ(r.error().code, util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.error().message.rfind(GetParam().message_prefix, 0), 0u)
      << GetParam().label << ": got \"" << r.error().message << '"';
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, TraceIoRejects,
    ::testing::Values(
        RejectCase{"no_rows", "", "capture has no samples"},
        RejectCase{"short_row", "0.0,1.5\n", "bad row 0"},
        RejectCase{"long_row", "0.0,1.5,3.7,9\n", "bad row 0"},
        RejectCase{"trailing_garbage", "0.0,1.5abc,3.7\n", "unparseable row"},
        RejectCase{"nan_literal", "0.0,nan,3.7\n", "unparseable row"},
        RejectCase{"inf_literal", "0.0,inf,3.7\n", "unparseable row"},
        RejectCase{"hex_float", "0.0,0x1p3,3.7\n", "unparseable row"},
        RejectCase{"empty_field", "0.0,,3.7\n", "unparseable row"},
        RejectCase{"out_of_order", "0.1,1.0,3.7\n0.1,2.0,3.7\n",
                   "out-of-order timestamp"},
        RejectCase{"bad_marker", "# effective_hz=abc\n0.0,1.0,3.7\n",
                   "bad effective_hz marker"}),
    [](const ::testing::TestParamInfo<RejectCase>& info) {
      return info.param.label;
    });

TEST(TraceIoRejects, MissingHeaderAndBinaryGarbage) {
  std::istringstream no_header{"0.0,1.5,3.7\n"};
  const auto r = read_capture_csv_stream(no_header);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.error().message, "missing Monsoon CSV header");

  std::istringstream garbage{std::string{"\x00\xFF\x81\x7F garbage", 12}};
  EXPECT_FALSE(read_capture_csv_stream(garbage).ok());
  std::istringstream chunk_garbage{std::string{"\x00\xFF\x81\x7F", 4}};
  EXPECT_FALSE(read_capture_chunked_stream(chunk_garbage).ok());
}

TEST(TraceIoRejects, StrictParseStillAcceptsHonestExports) {
  // The hardening must not reject what write_capture_csv itself emits.
  std::istringstream is{
      "time_s,current_mA,voltage\n"
      "# effective_hz=50.000000 source_hz=5000.000000 stride=100\n"
      "0.000000,120.500,3.700\n"
      "0.020000,121.000,3.700\n"};
  const auto r = read_capture_csv_stream(is);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().sample_count(), 2u);
  EXPECT_DOUBLE_EQ(r.value().sample_hz(), 50.0);
}

}  // namespace
}  // namespace blab::analysis
