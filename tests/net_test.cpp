// Unit tests for the network substrate: links, routing, flows, WiFi, USB,
// Bluetooth, VPN, speedtest, DNS, SSH.
#include <gtest/gtest.h>

#include "net/bluetooth.hpp"
#include "net/dns.hpp"
#include "net/flow.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/speedtest.hpp"
#include "net/ssh.hpp"
#include "net/usb.hpp"
#include "net/vpn.hpp"
#include "net/wifi.hpp"
#include "sim/simulator.hpp"

namespace blab::net {
namespace {

using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------- link ----

TEST(LinkTest, SerializationTime) {
  // 1 MB at 8 Mbps = 1 second.
  EXPECT_NEAR(serialization_time(1'000'000, 8.0).to_seconds(), 1.0, 1e-9);
  EXPECT_EQ(serialization_time(100, 0.0), Duration::max());
}

TEST(LinkTest, TransitIncludesLatencyAndSerialization) {
  util::Rng rng{1};
  Link link{"a", "b", LinkSpec::symmetric(Duration::millis(10), 8.0)};
  const auto t = link.send("a", 1'000'000, TimePoint::epoch(), rng);
  EXPECT_FALSE(t.dropped);
  EXPECT_NEAR(t.delay.to_seconds(), 1.010, 1e-3);
}

TEST(LinkTest, BackToBackSendsQueue) {
  util::Rng rng{1};
  Link link{"a", "b", LinkSpec::symmetric(Duration::millis(0), 8.0)};
  const auto first = link.send("a", 1'000'000, TimePoint::epoch(), rng);
  const auto second = link.send("a", 1'000'000, TimePoint::epoch(), rng);
  EXPECT_NEAR(second.delay.to_seconds(), first.delay.to_seconds() + 1.0, 1e-3);
}

TEST(LinkTest, DirectionsQueueIndependently) {
  util::Rng rng{1};
  Link link{"a", "b", LinkSpec::symmetric(Duration::millis(0), 8.0)};
  (void)link.send("a", 1'000'000, TimePoint::epoch(), rng);
  const auto reverse = link.send("b", 1'000'000, TimePoint::epoch(), rng);
  EXPECT_NEAR(reverse.delay.to_seconds(), 1.0, 1e-3);
}

TEST(LinkTest, AsymmetricBandwidth) {
  util::Rng rng{1};
  LinkSpec spec;
  spec.latency = Duration::zero();
  spec.bandwidth_ab_mbps = 8.0;
  spec.bandwidth_ba_mbps = 80.0;
  Link link{"a", "b", spec};
  EXPECT_NEAR(link.send("a", 1'000'000, TimePoint::epoch(), rng)
                  .delay.to_seconds(),
              1.0, 1e-3);
  EXPECT_NEAR(link.send("b", 1'000'000, TimePoint::epoch(), rng)
                  .delay.to_seconds(),
              0.1, 1e-3);
}

TEST(LinkTest, LossDropsPackets) {
  util::Rng rng{1};
  LinkSpec spec = LinkSpec::symmetric(Duration::millis(1), 100.0);
  spec.loss_rate = 0.5;
  Link link{"a", "b", spec};
  int drops = 0;
  for (int i = 0; i < 1000; ++i) {
    if (link.send("a", 100, TimePoint::epoch(), rng).dropped) ++drops;
  }
  EXPECT_NEAR(drops, 500, 60);
  EXPECT_EQ(link.drops(), static_cast<std::uint64_t>(drops));
}

TEST(LinkTest, ByteCountersPerDirection) {
  util::Rng rng{1};
  Link link{"a", "b", LinkSpec::symmetric(Duration::millis(1), 100.0)};
  (void)link.send("a", 100, TimePoint::epoch(), rng);
  (void)link.send("b", 50, TimePoint::epoch(), rng);
  EXPECT_EQ(link.bytes_ab(), 100u);
  EXPECT_EQ(link.bytes_ba(), 50u);
}

// ------------------------------------------------------------- network ----

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Network net{sim, 7};
};

TEST_F(NetworkTest, DeliversToListener) {
  net.add_link("a", "b", LinkSpec::symmetric(Duration::millis(5), 100.0));
  std::string got;
  net.listen({"b", 80}, [&](const Message& m) { got = m.payload; });
  Message m;
  m.src = {"a", 1000};
  m.dst = {"b", 80};
  m.tag = "test";
  m.payload = "hello";
  ASSERT_TRUE(net.send(std::move(m)).ok());
  sim.run_all();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(net.delivered(), 1u);
}

TEST_F(NetworkTest, SendFailsWithoutRoute) {
  net.add_host("a");
  net.add_host("z");
  net.listen({"z", 80}, [](const Message&) {});
  Message m;
  m.src = {"a", 1};
  m.dst = {"z", 80};
  EXPECT_FALSE(net.send(std::move(m)).ok());
}

TEST_F(NetworkTest, SendFailsWithoutListener) {
  net.add_link("a", "b", LinkSpec::symmetric(Duration::millis(1), 100.0));
  Message m;
  m.src = {"a", 1};
  m.dst = {"b", 80};
  const auto st = net.send(std::move(m));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::ErrorCode::kNotFound);
}

TEST_F(NetworkTest, MultiHopRouting) {
  net.add_link("a", "m", LinkSpec::symmetric(Duration::millis(5), 100.0));
  net.add_link("m", "b", LinkSpec::symmetric(Duration::millis(5), 100.0));
  const auto path = net.path("a", "b");
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], "m");
  TimePoint delivered_at;
  net.listen({"b", 80}, [&](const Message&) { delivered_at = sim.now(); });
  Message m;
  m.src = {"a", 1};
  m.dst = {"b", 80};
  m.wire_bytes = 64;
  ASSERT_TRUE(net.send(std::move(m)).ok());
  sim.run_all();
  EXPECT_GE((delivered_at - TimePoint::epoch()).to_millis(), 10.0);
}

TEST_F(NetworkTest, HopCostSteersRouting) {
  // Direct expensive link vs two cheap hops.
  LinkSpec direct = LinkSpec::symmetric(Duration::millis(1), 10.0);
  direct.hop_cost = 5;
  net.add_link("a", "b", direct);
  net.add_link("a", "m", LinkSpec::symmetric(Duration::millis(1), 10.0));
  net.add_link("m", "b", LinkSpec::symmetric(Duration::millis(1), 10.0));
  const auto path = net.path("a", "b");
  ASSERT_EQ(path.size(), 3u) << "should avoid the cost-5 direct link";
}

TEST_F(NetworkTest, DisabledLinkInvisibleToRouting) {
  auto& link = net.add_link("a", "b",
                            LinkSpec::symmetric(Duration::millis(1), 10.0));
  EXPECT_EQ(net.path("a", "b").size(), 2u);
  link.set_enabled(false);
  EXPECT_TRUE(net.path("a", "b").empty());
  link.set_enabled(true);
  EXPECT_EQ(net.path("a", "b").size(), 2u);
}

TEST_F(NetworkTest, ParallelLinksSelectedByLabelAndCost) {
  LinkSpec usb = LinkSpec::symmetric(Duration::micros(100), 480.0);
  usb.hop_cost = 1;
  LinkSpec wifi = LinkSpec::symmetric(Duration::millis(2), 36.0);
  wifi.hop_cost = 2;
  auto& usb_link = net.add_link("ctrl", "dev", usb, "usb");
  net.add_link("ctrl", "dev", wifi, "wifi");
  EXPECT_EQ(net.find_link("ctrl", "dev", "usb"), &usb_link);
  EXPECT_NE(net.find_link("ctrl", "dev", "wifi"), nullptr);
  EXPECT_EQ(net.find_link("ctrl", "dev", "bt"), nullptr);

  // With USB up, messages ride it (sub-ms delivery).
  TimePoint at;
  net.listen({"dev", 1}, [&](const Message&) { at = sim.now(); });
  Message m;
  m.src = {"ctrl", 9};
  m.dst = {"dev", 1};
  m.wire_bytes = 64;
  ASSERT_TRUE(net.send(std::move(m)).ok());
  sim.run_all();
  EXPECT_LT((at - TimePoint::epoch()).to_millis(), 1.0);

  // Cut USB: traffic falls over to WiFi (≥2 ms latency).
  usb_link.set_enabled(false);
  const TimePoint before = sim.now();
  Message m2;
  m2.src = {"ctrl", 9};
  m2.dst = {"dev", 1};
  m2.wire_bytes = 64;
  ASSERT_TRUE(net.send(std::move(m2)).ok());
  sim.run_all();
  EXPECT_GE((at - before).to_millis(), 1.5);
}

TEST_F(NetworkTest, GatewayForcesPathThroughVpnNode) {
  net.add_link("ctrl", "vpn", LinkSpec::symmetric(Duration::millis(50), 10.0));
  net.add_link("ctrl", "internet",
               LinkSpec::symmetric(Duration::millis(5), 100.0));
  net.add_link("vpn", "internet",
               LinkSpec::symmetric(Duration::millis(3), 10.0));
  ASSERT_TRUE(net.set_gateway("ctrl", "vpn").ok());
  const auto path = net.path("ctrl", "internet");
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], "vpn");
  ASSERT_TRUE(net.set_gateway("ctrl", "").ok());
  EXPECT_EQ(net.path("ctrl", "internet").size(), 2u);
}

TEST_F(NetworkTest, GatewayToUnknownHostFails) {
  net.add_host("a");
  EXPECT_FALSE(net.set_gateway("a", "nope").ok());
}

TEST_F(NetworkTest, HostStatsAccumulate) {
  net.add_link("a", "b", LinkSpec::symmetric(Duration::millis(1), 100.0));
  net.listen({"b", 80}, [](const Message&) {});
  Message m;
  m.src = {"a", 1};
  m.dst = {"b", 80};
  m.wire_bytes = 500;
  ASSERT_TRUE(net.send(std::move(m)).ok());
  sim.run_all();
  EXPECT_EQ(net.stats("a").bytes_tx, 500u);
  EXPECT_EQ(net.stats("b").bytes_rx, 500u);
  EXPECT_EQ(net.stats("a").msgs_tx, 1u);
  net.reset_stats();
  EXPECT_EQ(net.stats("a").bytes_tx, 0u);
}

TEST_F(NetworkTest, PathBandwidthIsBottleneck) {
  net.add_link("a", "m", LinkSpec::symmetric(Duration::millis(1), 100.0));
  net.add_link("m", "b", LinkSpec::symmetric(Duration::millis(1), 7.0));
  auto bw = net.path_bandwidth_mbps("a", "b");
  ASSERT_TRUE(bw.ok());
  EXPECT_DOUBLE_EQ(bw.value(), 7.0);
}

// ---------------------------------------------------------------- flow ----

class FlowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net.add_link("src", "dst", LinkSpec::symmetric(Duration::millis(5), 10.0));
  }
  sim::Simulator sim;
  Network net{sim, 11};
};

TEST_F(FlowTest, TransfersAllBytes) {
  FlowResult result;
  Flow flow{net, "src", "dst", 2 * 1024 * 1024, {},
            [&](const FlowResult& r) { result = r; }};
  flow.start();
  sim.run_all();
  ASSERT_TRUE(flow.done());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.bytes, 2u * 1024 * 1024);
  EXPECT_GT(result.throughput_mbps, 5.0);
  EXPECT_LE(result.throughput_mbps, 10.5);
}

TEST_F(FlowTest, ThroughputApproachesBottleneck) {
  FlowResult result;
  Flow flow{net, "src", "dst", 10 * 1024 * 1024, {},
            [&](const FlowResult& r) { result = r; }};
  flow.start();
  sim.run_all();
  EXPECT_NEAR(result.throughput_mbps, 10.0, 1.2);
}

TEST_F(FlowTest, SurvivesPacketLoss) {
  net.find_link("src", "dst")->set_spec([&] {
    LinkSpec spec = LinkSpec::symmetric(Duration::millis(5), 10.0);
    spec.loss_rate = 0.05;
    return spec;
  }());
  FlowResult result;
  Flow flow{net, "src", "dst", 4 * 1024 * 1024, {},
            [&](const FlowResult& r) { result = r; }};
  flow.start();
  sim.run_all();
  EXPECT_TRUE(result.success);
  EXPECT_GT(result.retransmissions, 0);
}

TEST_F(FlowTest, FailsWithoutRoute) {
  net.add_host("island");
  FlowResult result;
  Flow flow{net, "src", "island", 1024, {},
            [&](const FlowResult& r) { result = r; }};
  flow.start();
  sim.run_all();
  EXPECT_TRUE(flow.done());
  EXPECT_FALSE(result.success);
}

TEST_F(FlowTest, EstimateMatchesSimulationOrder) {
  const auto est = Flow::estimate(10 * 1024 * 1024, Duration::millis(10), 10.0);
  FlowResult result;
  Flow flow{net, "src", "dst", 10 * 1024 * 1024, {},
            [&](const FlowResult& r) { result = r; }};
  flow.start();
  sim.run_all();
  // Estimate and simulation should agree within a factor of two.
  EXPECT_GT(result.elapsed.to_seconds() / est.to_seconds(), 0.5);
  EXPECT_LT(result.elapsed.to_seconds() / est.to_seconds(), 2.0);
}

// Property: flow options (segment size, window) never break correctness —
// all bytes arrive over a mildly lossy path for every configuration.
struct FlowOptionCase {
  std::size_t segment_bytes;
  std::size_t init_cwnd;
};

class FlowOptionSweep : public ::testing::TestWithParam<FlowOptionCase> {};

TEST_P(FlowOptionSweep, CompletesUnderLoss) {
  sim::Simulator sim;
  Network net{sim, 9};
  LinkSpec spec = LinkSpec::symmetric(Duration::millis(10), 25.0);
  spec.loss_rate = 0.01;
  net.add_link("s", "d", spec);
  FlowOptions options;
  options.segment_bytes = GetParam().segment_bytes;
  options.init_cwnd_segments = GetParam().init_cwnd;
  FlowResult result;
  Flow flow{net, "s", "d", 2 * 1024 * 1024, options,
            [&](const FlowResult& r) { result = r; }};
  flow.start();
  sim.run_all();
  EXPECT_TRUE(result.success)
      << "segment=" << GetParam().segment_bytes
      << " cwnd=" << GetParam().init_cwnd;
  EXPECT_EQ(result.bytes, 2u * 1024 * 1024);
}

INSTANTIATE_TEST_SUITE_P(
    Options, FlowOptionSweep,
    ::testing::Values(FlowOptionCase{4 * 1024, 2},
                      FlowOptionCase{16 * 1024, 10},
                      FlowOptionCase{64 * 1024, 10},
                      FlowOptionCase{256 * 1024, 4},
                      FlowOptionCase{1440, 10}));

// Property: flows of many sizes all complete and never exceed link capacity.
class FlowSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FlowSizeSweep, CompletesWithinCapacity) {
  sim::Simulator sim;
  Network net{sim, 3};
  net.add_link("s", "d", LinkSpec::symmetric(Duration::millis(8), 20.0));
  FlowResult result;
  Flow flow{net, "s", "d", GetParam(), {},
            [&](const FlowResult& r) { result = r; }};
  flow.start();
  sim.run_all();
  EXPECT_TRUE(result.success);
  EXPECT_LE(result.throughput_mbps, 21.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlowSizeSweep,
                         ::testing::Values(1, 1000, 64 * 1024, 100 * 1024,
                                           1024 * 1024, 5 * 1024 * 1024));

TEST_F(FlowTest, ByteAccountingConserved) {
  FlowResult result;
  Flow flow{net, "src", "dst", 3 * 1024 * 1024, {},
            [&](const FlowResult& r) { result = r; }};
  flow.start();
  sim.run_all();
  ASSERT_TRUE(result.success);
  // Everything src sent (payload + headers) was received by dst, and the
  // ack stream flows the other way — conservation at the host counters.
  EXPECT_EQ(net.stats("src").bytes_tx, net.stats("dst").bytes_rx);
  EXPECT_EQ(net.stats("dst").bytes_tx, net.stats("src").bytes_rx);
  EXPECT_GE(net.stats("src").bytes_tx, 3u * 1024 * 1024);
  // Header + ack overhead stays below 1%.
  EXPECT_LT(static_cast<double>(net.stats("src").bytes_tx),
            3.0 * 1024 * 1024 * 1.01);
}

TEST_F(NetworkTest, TwoTunneledHostsRouteThroughBothGateways) {
  // Both endpoints behind (different) VPN exits: the path must traverse
  // both gateways, in order.
  for (const char* h : {"a", "b", "gw-a", "gw-b", "core"}) net.add_host(h);
  net.add_link("a", "gw-a", LinkSpec::symmetric(Duration::millis(5), 50.0));
  net.add_link("b", "gw-b", LinkSpec::symmetric(Duration::millis(5), 50.0));
  net.add_link("gw-a", "core", LinkSpec::symmetric(Duration::millis(5), 50.0));
  net.add_link("gw-b", "core", LinkSpec::symmetric(Duration::millis(5), 50.0));
  net.add_link("a", "core", LinkSpec::symmetric(Duration::millis(1), 50.0));
  net.add_link("b", "core", LinkSpec::symmetric(Duration::millis(1), 50.0));
  ASSERT_TRUE(net.set_gateway("a", "gw-a").ok());
  ASSERT_TRUE(net.set_gateway("b", "gw-b").ok());
  const auto path = net.path("a", "b");
  ASSERT_GE(path.size(), 4u);
  EXPECT_EQ(path[1], "gw-a");
  EXPECT_NE(std::find(path.begin(), path.end(), "gw-b"), path.end());
}

// ---------------------------------------------------------------- wifi ----

TEST(WifiTest, AssociateCreatesLinkAndForwarding) {
  sim::Simulator sim;
  Network net{sim};
  net.add_host("ctrl");
  WifiAccessPoint ap{net, "ctrl", "ctrl", ApMode::kNat};
  ASSERT_TRUE(ap.associate("dev").ok());
  EXPECT_TRUE(ap.is_associated("dev"));
  EXPECT_NE(net.find_link("ctrl", "dev", "wifi"), nullptr);
  EXPECT_FALSE(ap.inbound_allowed("dev", 5555));
  ap.forward_port("dev", 5555);
  EXPECT_TRUE(ap.inbound_allowed("dev", 5555));
}

TEST(WifiTest, BridgeModeIsTransparent) {
  sim::Simulator sim;
  Network net{sim};
  net.add_host("ctrl");
  WifiAccessPoint ap{net, "ctrl", "ctrl", ApMode::kBridge};
  ASSERT_TRUE(ap.associate("dev").ok());
  EXPECT_TRUE(ap.inbound_allowed("dev", 12345));
}

TEST(WifiTest, DoubleAssociateRejected) {
  sim::Simulator sim;
  Network net{sim};
  net.add_host("ctrl");
  WifiAccessPoint ap{net, "ctrl", "ctrl"};
  ASSERT_TRUE(ap.associate("dev").ok());
  EXPECT_FALSE(ap.associate("dev").ok());
  ASSERT_TRUE(ap.disassociate("dev").ok());
  EXPECT_FALSE(ap.disassociate("dev").ok());
}

// ----------------------------------------------------------------- usb ----

TEST(UsbTest, AttachDetachAndPower) {
  sim::Simulator sim;
  Network net{sim};
  UsbHub hub{net, "ctrl", 2};
  auto port = hub.attach("dev1");
  ASSERT_TRUE(port.ok());
  EXPECT_EQ(hub.charge_current_ma("dev1"), kUsbChargeCurrentMa);
  EXPECT_TRUE(hub.data_path_up("dev1"));

  ASSERT_TRUE(hub.set_port_power_for("dev1", false).ok());
  EXPECT_EQ(hub.charge_current_ma("dev1"), 0.0);
  EXPECT_FALSE(hub.data_path_up("dev1"));
  EXPECT_TRUE(net.path("ctrl", "dev1").empty())
      << "powered-off port must drop the data link";

  ASSERT_TRUE(hub.set_port_power_for("dev1", true).ok());
  EXPECT_EQ(net.path("ctrl", "dev1").size(), 2u);
  ASSERT_TRUE(hub.detach("dev1").ok());
  EXPECT_EQ(hub.charge_current_ma("dev1"), 0.0);
}

TEST(UsbTest, PortExhaustion) {
  sim::Simulator sim;
  Network net{sim};
  UsbHub hub{net, "ctrl", 1};
  ASSERT_TRUE(hub.attach("dev1").ok());
  EXPECT_FALSE(hub.attach("dev2").ok());
  EXPECT_FALSE(hub.attach("dev1").ok()) << "double attach";
}

// ----------------------------------------------------------- bluetooth ----

TEST(BluetoothTest, PairingCreatesSlowExpensiveLink) {
  sim::Simulator sim;
  Network net{sim};
  BluetoothAdapter ctrl{net, "ctrl"};
  BluetoothAdapter dev{net, "dev"};
  ASSERT_TRUE(ctrl.pair(dev, BtProfile::kHid).ok());
  EXPECT_TRUE(ctrl.paired_with("dev"));
  EXPECT_TRUE(dev.paired_with("ctrl"));
  Link* link = net.find_link("ctrl", "dev", "bt");
  ASSERT_NE(link, nullptr);
  EXPECT_GT(link->spec().hop_cost, 1);
  EXPECT_LT(link->spec().bandwidth_ab_mbps, 3.0);
  EXPECT_FALSE(ctrl.pair(dev, BtProfile::kHid).ok()) << "double pair";
}

// ----------------------------------------------------------------- vpn ----

TEST(VpnTest, TableTwoProfilesPresent) {
  const auto& locations = proton_vpn_locations();
  ASSERT_EQ(locations.size(), 5u);
  const auto* japan = find_vpn_location("Japan");
  ASSERT_NE(japan, nullptr);
  EXPECT_EQ(japan->city, "Bunkyo");
  EXPECT_NEAR(japan->down_mbps, 9.68, 1e-9);
  EXPECT_NEAR(japan->rtt_ms, 239.38, 1e-9);
  EXPECT_EQ(find_vpn_location("Atlantis"), nullptr);
}

TEST(VpnTest, ConnectInstallsGatewayAndDisconnectRemoves) {
  sim::Simulator sim;
  Network net{sim};
  net.add_host("ctrl");
  net.add_link("ctrl", "internet",
               LinkSpec::symmetric(Duration::millis(5), 100.0));
  VpnProvider vpn{net, "internet"};
  ASSERT_TRUE(vpn.connect("ctrl", "Japan").ok());
  EXPECT_EQ(vpn.active_location("ctrl"), "Japan");
  const auto path = net.path("ctrl", "internet");
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], "vpn.Bunkyo");
  ASSERT_TRUE(vpn.disconnect("ctrl").ok());
  EXPECT_EQ(net.path("ctrl", "internet").size(), 2u);
  EXPECT_FALSE(vpn.disconnect("ctrl").ok());
}

TEST(VpnTest, UnknownLocationRejected) {
  sim::Simulator sim;
  Network net{sim};
  net.add_host("ctrl");
  VpnProvider vpn{net, "internet"};
  EXPECT_FALSE(vpn.connect("ctrl", "Atlantis").ok());
}

// ----------------------------------------------------------- speedtest ----

TEST(SpeedTestTest, RecoversDirectLinkCharacteristics) {
  sim::Simulator sim;
  Network net{sim};
  net.add_link("client", "server",
               LinkSpec::symmetric(Duration::millis(25), 20.0));
  SpeedTestConfig config;
  config.download_bytes = 6 * 1024 * 1024;
  config.upload_bytes = 6 * 1024 * 1024;
  SpeedTest st{net, "client", "server", config};
  auto result = st.run();
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().rtt_ms, 50.0, 8.0);
  EXPECT_NEAR(result.value().download_mbps, 20.0, 3.0);
  EXPECT_NEAR(result.value().upload_mbps, 20.0, 3.0);
}

TEST(SpeedTestTest, AsymmetricLinkMeasuredPerDirection) {
  sim::Simulator sim;
  Network net{sim};
  LinkSpec spec;
  spec.latency = Duration::millis(10);
  spec.bandwidth_ab_mbps = 5.0;   // client -> server (upload)
  spec.bandwidth_ba_mbps = 15.0;  // server -> client (download)
  net.add_link("client", "server", spec);
  SpeedTestConfig config;
  config.download_bytes = 4 * 1024 * 1024;
  config.upload_bytes = 4 * 1024 * 1024;
  SpeedTest st{net, "client", "server", config};
  auto result = st.run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().download_mbps, result.value().upload_mbps * 2.0);
}

// ----------------------------------------------------------------- dns ----

TEST(DnsTest, RegisterResolveDeregister) {
  DnsRegistry dns;
  ASSERT_TRUE(dns.register_node("node1", "ctrl.node1").ok());
  auto host = dns.resolve("node1.batterylab.dev");
  ASSERT_TRUE(host.ok());
  EXPECT_EQ(host.value(), "ctrl.node1");
  EXPECT_FALSE(dns.register_node("node1", "other").ok());
  ASSERT_TRUE(dns.deregister_node("node1").ok());
  EXPECT_FALSE(dns.resolve("node1.batterylab.dev").ok());
}

TEST(DnsTest, RejectsBadLabelsAndForeignZones) {
  DnsRegistry dns;
  EXPECT_FALSE(dns.register_node("", "h").ok());
  EXPECT_FALSE(dns.register_node("a.b", "h").ok());
  EXPECT_FALSE(dns.resolve("node1.evil.example").ok());
}

TEST(DnsTest, WildcardCoversSingleLabel) {
  DnsRegistry dns;
  EXPECT_TRUE(dns.wildcard_covers("node1.batterylab.dev"));
  EXPECT_TRUE(dns.wildcard_covers("anything.batterylab.dev"));
  EXPECT_FALSE(dns.wildcard_covers("a.b.batterylab.dev"));
  EXPECT_FALSE(dns.wildcard_covers("batterylab.dev"));
}

// ----------------------------------------------------------------- ssh ----

class SshTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net.add_link("server-host", "client-host",
                 LinkSpec::symmetric(Duration::millis(10), 100.0));
  }
  sim::Simulator sim;
  Network net{sim, 5};
};

TEST_F(SshTest, AuthorizedKeyExecutes) {
  SshServer server{net, "server-host"};
  server.set_command_handler([](const std::string& cmd) {
    return SshCommandResult{0, "ran: " + cmd};
  });
  const auto key = SshKeyPair::generate("alice");
  server.authorize_key(key.public_key);
  SshClient client{net, "client-host", key};
  auto result = client.exec_sync(server.address(), "uptime");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().exit_code, 0);
  EXPECT_EQ(result.value().output, "ran: uptime");
  EXPECT_EQ(server.stats().accepted, 1u);
}

TEST_F(SshTest, UnauthorizedKeyDenied) {
  SshServer server{net, "server-host"};
  const auto good = SshKeyPair::generate("alice");
  const auto bad = SshKeyPair::generate("mallory");
  server.authorize_key(good.public_key);
  SshClient client{net, "client-host", bad};
  auto result = client.exec_sync(server.address(), "uptime");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::ErrorCode::kPermissionDenied);
  EXPECT_EQ(server.stats().rejected_key, 1u);
}

TEST_F(SshTest, IpWhitelistEnforced) {
  SshServer server{net, "server-host"};
  const auto key = SshKeyPair::generate("alice");
  server.authorize_key(key.public_key);
  server.whitelist_source("somewhere-else");
  SshClient client{net, "client-host", key};
  auto result = client.exec_sync(server.address(), "uptime");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(server.stats().rejected_ip, 1u);

  server.whitelist_source("client-host");
  auto retry = client.exec_sync(server.address(), "uptime");
  EXPECT_TRUE(retry.ok());
}

TEST_F(SshTest, RevokedKeyDenied) {
  SshServer server{net, "server-host"};
  const auto key = SshKeyPair::generate("alice");
  server.authorize_key(key.public_key);
  server.revoke_key(key.public_key);
  SshClient client{net, "client-host", key};
  EXPECT_FALSE(client.exec_sync(server.address(), "id").ok());
}

TEST_F(SshTest, NonZeroExitCodePropagates) {
  SshServer server{net, "server-host"};
  server.set_command_handler([](const std::string&) {
    return SshCommandResult{3, "boom"};
  });
  const auto key = SshKeyPair::generate("alice");
  server.authorize_key(key.public_key);
  SshClient client{net, "client-host", key};
  auto result = client.exec_sync(server.address(), "false");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().exit_code, 3);
}

TEST(SshKeyTest, FingerprintsStable) {
  const auto a = SshKeyPair::generate("alice");
  const auto b = SshKeyPair::generate("alice");
  const auto c = SshKeyPair::generate("bob");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

}  // namespace
}  // namespace blab::net
