// Unit tests for the util module: time, ids, results, RNG, stats, strings,
// tables.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <numbers>
#include <set>
#include <span>
#include <vector>

#include "util/id.hpp"
#include "util/logging.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace blab::util {
namespace {

// ---------------------------------------------------------------- time ----

TEST(DurationTest, ConstructorsAgree) {
  EXPECT_EQ(Duration::millis(5).us(), 5000);
  EXPECT_EQ(Duration::seconds(2).us(), 2'000'000);
  EXPECT_EQ(Duration::minutes(1).us(), 60'000'000);
  EXPECT_EQ(Duration::micros(7).us(), 7);
}

TEST(DurationTest, Arithmetic) {
  const auto a = Duration::millis(300);
  const auto b = Duration::millis(200);
  EXPECT_EQ((a + b).us(), 500'000);
  EXPECT_EQ((a - b).us(), 100'000);
  EXPECT_DOUBLE_EQ((a * 2.0).to_millis(), 600.0);
  EXPECT_DOUBLE_EQ(a / b, 1.5);
  EXPECT_TRUE((b - a).is_negative());
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
  EXPECT_GE(Duration::zero(), Duration::zero());
}

TEST(TimePointTest, OffsetArithmetic) {
  const auto t = TimePoint::epoch() + Duration::seconds(10);
  EXPECT_EQ(t.us(), 10'000'000);
  EXPECT_EQ((t - TimePoint::epoch()).to_seconds(), 10.0);
  EXPECT_EQ((t - Duration::seconds(4)).us(), 6'000'000);
}

TEST(TimeFormatTest, HumanReadable) {
  EXPECT_EQ(to_string(Duration::micros(500)), "500us");
  EXPECT_EQ(to_string(Duration::millis(12)), "12.00ms");
  EXPECT_EQ(to_string(Duration::seconds(1.5)), "1.500s");
  EXPECT_EQ(to_string(Duration::micros(-1500000)), "-1.500s");
}

// ------------------------------------------------------------------ id ----

struct TestTag {};

TEST(IdTest, DefaultIsInvalid) {
  Id<TestTag> id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, Id<TestTag>::invalid());
}

TEST(IdTest, AllocatorNeverIssuesInvalid) {
  IdAllocator<TestTag> alloc;
  std::set<Id<TestTag>> seen;
  for (int i = 0; i < 100; ++i) {
    const auto id = alloc.next();
    EXPECT_TRUE(id.valid());
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id issued";
  }
}

TEST(IdTest, HashWorksInUnorderedContainers) {
  std::unordered_map<Id<TestTag>, int> map;
  IdAllocator<TestTag> alloc;
  const auto a = alloc.next();
  map[a] = 7;
  EXPECT_EQ(map.at(a), 7);
}

// -------------------------------------------------------------- result ----

TEST(ResultTest, OkCarriesValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, ErrorCarriesCodeAndMessage) {
  Result<int> r{make_error(ErrorCode::kNotFound, "gone")};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "gone");
  EXPECT_EQ(r.error().str(), "NOT_FOUND: gone");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.str(), "OK");
}

TEST(StatusTest, ErrorStatus) {
  Status st{make_error(ErrorCode::kTimeout, "slow")};
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ErrorCode::kTimeout);
}

// ----------------------------------------------------------------- rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng{7};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsConverge) {
  Rng rng{99};
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng{3};
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
}

TEST(RngTest, LognormalMedianConverges) {
  Rng rng{5};
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal_median(3.0, 0.5));
  Cdf cdf{std::move(xs)};
  EXPECT_NEAR(cdf.median(), 3.0, 0.12);
}

TEST(RngTest, ChanceProbability) {
  Rng rng{11};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng parent{42};
  Rng child1 = parent.fork("alpha");
  Rng child2 = parent.fork("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, FillNormalMatchesScalarSequence) {
  // fill_normal is the batched hot path behind capture synthesis; it must
  // reproduce the scalar normal() stream BITWISE (same draws, same order,
  // same per-sample u64 consumption through the ziggurat accept/reject
  // path) or the DST golden digests drift. Long lengths make edge-layer and
  // wedge-rejection draws statistically certain to appear.
  const std::vector<std::size_t> lengths{1, 2, 3, 7, 8, 64, 1023};
  for (std::size_t n : lengths) {
    Rng scalar{0xB10CULL + n};
    Rng batched{0xB10CULL + n};
    std::vector<double> want(n);
    for (std::size_t i = 0; i < n; ++i) want[i] = scalar.normal(1.5, 0.25);
    std::vector<double> got(n);
    batched.fill_normal(got, 1.5, 0.25);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(want[i], got[i]) << "n=" << n << " sample " << i
                                 << " diverged from the scalar stream";
    }
    // Both generators must leave identical state behind (including the
    // cached-pair flag), so interleaving scalar and batched draws agrees too.
    EXPECT_EQ(scalar.normal(), batched.normal()) << "n=" << n;
    EXPECT_EQ(scalar.next_u64(), batched.next_u64()) << "n=" << n;
  }
}

TEST(RngTest, FillNormalInterleavesWithScalarDraws) {
  // The sampler keeps no cross-call state, so scalar draws and batched fills
  // can interleave arbitrarily without perturbing the stream: scalar, fill,
  // scalar must equal the pure-scalar sequence.
  Rng scalar{77};
  Rng mixed{77};
  std::vector<double> want(7);
  for (auto& v : want) v = scalar.normal(-2.0, 3.0);
  std::vector<double> got(7);
  got[0] = mixed.normal(-2.0, 3.0);
  mixed.fill_normal(std::span<double>{got}.subspan(1, 5), -2.0, 3.0);
  got[6] = mixed.normal(-2.0, 3.0);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got[i]) << "sample " << i;
  }
  EXPECT_EQ(scalar.next_u64(), mixed.next_u64());
}

// ------------------------------------------------------------------------
// Ziggurat statistical quality: a table typo would skew every scenario's
// noise silently, so the distribution itself is pinned — moments, tail
// mass, and a coarse-bin chi-squared against the standard normal CDF.
// ------------------------------------------------------------------------

/// Standard normal CDF via the complementary error function.
double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

TEST(RngZigguratQuality, MomentsMatchStandardNormal) {
  Rng rng{0x216697A7};
  constexpr int kN = 1'000'000;
  // Accumulate central moments in one pass; with a fixed seed the values are
  // deterministic, and the tolerances are ~4x the asymptotic standard errors
  // (se(mean)=1e-3, se(var)=1.4e-3, se(skew)=2.4e-3, se(kurt)=4.9e-3).
  double sum = 0.0;
  std::vector<double> draws(kN);
  rng.fill_normal(draws, 0.0, 1.0);
  for (double x : draws) sum += x;
  const double mean = sum / kN;
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (double x : draws) {
    const double d = x - mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  m2 /= kN;
  m3 /= kN;
  m4 /= kN;
  const double skew = m3 / std::pow(m2, 1.5);
  const double kurtosis_excess = m4 / (m2 * m2) - 3.0;
  EXPECT_NEAR(mean, 0.0, 0.005);
  EXPECT_NEAR(m2, 1.0, 0.006);
  EXPECT_NEAR(skew, 0.0, 0.01);
  EXPECT_NEAR(kurtosis_excess, 0.0, 0.025);
}

TEST(RngZigguratQuality, TailMassBeyondThreeAndFourSigma) {
  // The tail layers are the part a broken table or tail sampler would get
  // wrong first. Expected counts over 10^6 draws: P(|X|>3) = 2.6998e-3
  // (~2700), P(|X|>4) = 6.334e-5 (~63).
  Rng rng{0x7A11};
  constexpr int kN = 1'000'000;
  int beyond3 = 0, beyond4 = 0;
  double worst = 0.0;
  std::vector<double> draws(kN);
  rng.fill_normal(draws, 0.0, 1.0);
  for (double x : draws) {
    const double a = std::abs(x);
    if (a > 3.0) ++beyond3;
    if (a > 4.0) ++beyond4;
    if (a > worst) worst = a;
  }
  EXPECT_GT(beyond3, 2300);
  EXPECT_LT(beyond3, 3150);
  EXPECT_GT(beyond4, 30);
  EXPECT_LT(beyond4, 105);
  // The tail must actually extend past the ziggurat base strip (r = 3.654),
  // and produce nothing absurd.
  EXPECT_GT(worst, 3.8);
  EXPECT_LT(worst, 7.0);
}

TEST(RngZigguratQuality, ChiSquaredAgainstNormalCdf) {
  // 18 bins: (-inf,-4], 16 equal-width bins over [-4, 4], [4, inf). With 17
  // degrees of freedom the 99.9th percentile is ~40.8; 60 leaves slack for
  // the fixed seed while still failing loudly on any layer-table skew.
  Rng rng{0xC41};
  constexpr int kN = 1'000'000;
  constexpr int kInner = 16;
  std::array<int, kInner + 2> counts{};
  std::vector<double> draws(kN);
  rng.fill_normal(draws, 0.0, 1.0);
  for (double x : draws) {
    if (x <= -4.0) {
      ++counts[0];
    } else if (x > 4.0) {
      ++counts[kInner + 1];
    } else {
      ++counts[1 + static_cast<int>((x + 4.0) / 0.5)];
    }
  }
  double chi2 = 0.0;
  for (int b = 0; b < kInner + 2; ++b) {
    const double lo = b == 0 ? -1e30 : -4.0 + 0.5 * (b - 1);
    const double hi = b == kInner + 1 ? 1e30 : -4.0 + 0.5 * b;
    const double expected = kN * (normal_cdf(hi) - normal_cdf(lo));
    const double d = counts[b] - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 60.0) << "ziggurat output diverges from the normal CDF";
}

TEST(RngTest, UniformIntSmallSpanIsUnbiased) {
  // Lemire bounded rejection: no span may inherit the old modulo bias. A
  // span of 3 (2^64 % 3 != 0) is exactly the shape the modulo fold skewed;
  // chi-squared over the three cells with 2 dof (99.9th pct ~13.8).
  Rng rng{0x5BA5};
  constexpr int kN = 300'000;
  std::array<int, 3> counts{};
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(-1, 1)) + 1];
  }
  const double expected = kN / 3.0;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 14.0);
  // Extreme spans stay total: the full-domain span cannot overflow.
  const auto full = rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                                    std::numeric_limits<std::int64_t>::max());
  (void)full;
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(9, 2), 9);  // degenerate bounds clamp to lo
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng{13};
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Fnv1aTest, StableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

// --------------------------------------------------------------- stats ----

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng{17};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.count(), all.count());
}

TEST(CdfTest, QuantilesOfKnownSample) {
  Cdf cdf{{1.0, 2.0, 3.0, 4.0, 5.0}};
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.0);
}

TEST(CdfTest, AtIsEmpiricalProbability) {
  Cdf cdf{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(3.0), 0.25);
}

TEST(CdfTest, CurveIsMonotonic) {
  Rng rng{23};
  Cdf cdf;
  for (int i = 0; i < 5000; ++i) cdf.add(rng.normal(0.0, 1.0));
  const auto curve = cdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LT(curve[i - 1].second, curve[i].second);
  }
}

TEST(CdfTest, QuantileOfEmptyThrows) {
  Cdf cdf;
  EXPECT_THROW((void)cdf.quantile(0.5), std::logic_error);
}

TEST(HistogramTest, BinningAndOverflow) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(TrapezoidTest, IntegratesLinearFunction) {
  std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y{0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(trapezoid_integral(t, y), 4.5);
}

// ------------------------------------------------------------- strings ----

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitWhitespace) {
  const auto parts = split_ws("  am   start\tcom.foo ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "am");
  EXPECT_EQ(parts[2], "com.foo");
}

TEST(StringsTest, TrimAndCase) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("AbC"), "abc");
}

TEST(StringsTest, JoinAndAffixes) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(starts_with("package:com.foo", "package:"));
  EXPECT_TRUE(ends_with("node1.batterylab.dev", ".batterylab.dev"));
  EXPECT_FALSE(ends_with("dev", ".batterylab.dev"));
}

TEST(StringsTest, Formatting) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(32.0 * 1024 * 1024), "32.0 MB");
}

// --------------------------------------------------------------- table ----

TEST(TextTableTest, AlignsColumns) {
  TextTable t{{"name", "value"}};
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

// ------------------------------------------------------------- logging ----

TEST(LoggingTest, CaptureSeesMessages) {
  LogCapture capture;
  BLAB_INFO("test-component", "hello " << 42);
  EXPECT_TRUE(capture.contains("hello 42"));
  EXPECT_TRUE(capture.contains("test-component"));
}

TEST(LoggingTest, LevelFiltering) {
  LogCapture capture;  // capture sets level to Debug
  Logger::global().set_level(LogLevel::kError);
  BLAB_WARN("c", "should not appear");
  BLAB_ERROR("c", "should appear");
  EXPECT_FALSE(capture.contains("should not appear"));
  EXPECT_TRUE(capture.contains("should appear"));
}

// Property sweep: CDF quantiles are monotone in q for arbitrary data shapes.
class CdfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfPropertyTest, QuantilesMonotone) {
  Rng rng{GetParam()};
  Cdf cdf;
  const int n = static_cast<int>(rng.uniform_int(2, 2000));
  for (int i = 0; i < n; ++i) cdf.add(rng.lognormal_median(50.0, 1.2));
  double prev = cdf.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = cdf.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_GE(cdf.mean(), cdf.min());
  EXPECT_LE(cdf.mean(), cdf.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace blab::util
