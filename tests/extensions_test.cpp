// Tests for the §5 extensions: laptop / IoT device classes, the GUI toolbar
// model, and recurring (cron-style) maintenance jobs.
#include <gtest/gtest.h>

#include <memory>

#include "api/batterylab_api.hpp"
#include "controller/toolbar.hpp"
#include "device/android.hpp"
#include "device/video_player.hpp"
#include "server/access_server.hpp"
#include "server/maintenance.hpp"
#include "util/stats.hpp"

namespace blab {
namespace {

using util::Duration;

class ExtensionFixture : public ::testing::Test {
 protected:
  ExtensionFixture() : net{sim, 616} {
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(Duration::millis(4), 900.0));
    vp = std::make_unique<api::VantagePoint>(sim, net);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(Duration::millis(6), 200.0));
    api = std::make_unique<api::BatteryLabApi>(*vp);
  }
  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<api::VantagePoint> vp;
  std::unique_ptr<api::BatteryLabApi> api;
};

// ------------------------------------------------------- device classes ----

TEST(DeviceClassTest, FactorySpecs) {
  const auto laptop = device::DeviceSpec::laptop("L1");
  EXPECT_EQ(laptop.device_class, device::DeviceClass::kLaptop);
  EXPECT_GT(laptop.battery.nominal_voltage, 9.0);
  EXPECT_FALSE(laptop.headless);

  const auto iot = device::DeviceSpec::iot_sensor("S1");
  EXPECT_EQ(iot.device_class, device::DeviceClass::kIot);
  EXPECT_TRUE(iot.headless);
  EXPECT_LT(iot.power.idle_ma, 5.0);

  EXPECT_STREQ(device::device_class_name(device::DeviceClass::kLaptop),
               "laptop");
  EXPECT_STREQ(device::device_class_name(device::DeviceClass::kIot), "iot");
}

TEST_F(ExtensionFixture, LaptopMeasuresAtPackVoltage) {
  auto added = vp->add_device(device::DeviceSpec::laptop("LAPTOP-1"));
  ASSERT_TRUE(added.ok());
  auto* laptop = added.value();
  EXPECT_TRUE(laptop->powered_on());
  // An 11.4 V pack sits inside the Monsoon's 0.8–13.5 V range; 14 V would
  // not (and a real 4S pack would need a different instrument).
  ASSERT_TRUE(api->power_monitor().ok());
  EXPECT_FALSE(api->set_voltage(14.0).ok());
  ASSERT_TRUE(api->set_voltage(11.4).ok());
  auto capture = api->run_monitor("LAPTOP-1", Duration::seconds(10));
  ASSERT_TRUE(capture.ok());
  // Screen-on idle laptop: hundreds of mA, well inside the 6 A limit.
  EXPECT_GT(capture.value().mean_current_ma(), 200.0);
  EXPECT_LT(capture.value().mean_current_ma(), 1200.0);
  EXPECT_NEAR(capture.value().voltage(), 11.4, 1e-9);
  EXPECT_GT(capture.value().energy_mwh(), 0.0);
}

TEST_F(ExtensionFixture, IotSensorBootsHeadlessAndSips) {
  auto added = vp->add_device(device::DeviceSpec::iot_sensor("SENSOR-1"));
  ASSERT_TRUE(added.ok());
  auto* sensor = added.value();
  EXPECT_FALSE(sensor->screen().is_on()) << "headless node has no panel";
  EXPECT_FALSE(sensor->bluetooth().enabled());
  EXPECT_NE(sensor->processes().find_by_name("firmware"), nullptr);
  EXPECT_LT(sensor->demand_ma(), 15.0);
}

TEST_F(ExtensionFixture, IotMeasurementIsNoiseFloorBound) {
  ASSERT_TRUE(vp->add_device(device::DeviceSpec::iot_sensor("SENSOR-1")).ok());
  ASSERT_TRUE(api->power_monitor().ok());
  ASSERT_TRUE(api->set_voltage(3.3).ok());
  auto capture = api->run_monitor("SENSOR-1", Duration::seconds(10));
  ASSERT_TRUE(capture.ok());
  const auto cdf = capture.value().current_cdf(5);
  // Single-digit mA true draw; the ±0.9 mA front-end noise is a large
  // relative effect — the reason milliohm-class instruments matter here.
  EXPECT_LT(cdf.mean(), 15.0);
  const double spread = cdf.quantile(0.9) - cdf.quantile(0.1);
  EXPECT_GT(spread / cdf.mean(), 0.15);
}

TEST_F(ExtensionFixture, MixedClassesShareOneVantagePoint) {
  ASSERT_TRUE(vp->add_device(device::DeviceSpec{}.iphone("IPHONE8-1")).ok());
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  ASSERT_TRUE(vp->add_device(phone).ok());
  ASSERT_TRUE(vp->add_device(device::DeviceSpec::laptop("LAPTOP-1")).ok());
  ASSERT_TRUE(vp->add_device(device::DeviceSpec::iot_sensor("SENSOR-1")).ok());
  EXPECT_EQ(api->list_devices().size(), 4u);
  // Relay channels are exhausted now (default 4).
  device::DeviceSpec fifth;
  fifth.serial = "ONE-TOO-MANY";
  EXPECT_FALSE(vp->add_device(fifth).ok());
}

// --------------------------------------------------------------- toolbar ----

TEST_F(ExtensionFixture, ToolbarMirrorsTableOneSubset) {
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  ASSERT_TRUE(vp->add_device(phone).ok());
  api->bind_rest_endpoints();
  controller::Toolbar toolbar{vp->rest()};
  ASSERT_EQ(toolbar.buttons().size(), 8u);
  EXPECT_TRUE(toolbar.has_button("Start monitor"));
  EXPECT_FALSE(toolbar.has_button("Self destruct"));

  auto devices = toolbar.click("Devices");
  ASSERT_TRUE(devices.ok());
  EXPECT_EQ(devices.value(), "J7DUO-1");

  ASSERT_TRUE(toolbar.click("Monitor power").ok());
  ASSERT_TRUE(toolbar.click("Set voltage", "voltage_val=3.85").ok());
  ASSERT_TRUE(toolbar.click("Start monitor", "device_id=J7DUO-1").ok());
  sim.run_for(Duration::seconds(1));
  auto stopped = toolbar.click("Stop monitor");
  ASSERT_TRUE(stopped.ok());
  EXPECT_NE(stopped.value().find("samples="), std::string::npos);
  EXPECT_FALSE(toolbar.click("Warp drive").ok());
  EXPECT_EQ(toolbar.clicks(), 5u);
}

// ------------------------------------------------------ sdcard + push -----

TEST_F(ExtensionFixture, SdcardShipsWithTheTestVideo) {
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  auto* dev = vp->add_device(phone).value();
  EXPECT_TRUE(dev->os().has_file("/sdcard/video.mp4"));
  auto size = dev->os().file_size("/sdcard/video.mp4");
  ASSERT_TRUE(size.ok());
  EXPECT_GT(size.value(), 10u * 1024 * 1024);
  EXPECT_FALSE(dev->os().file_size("/sdcard/nope.bin").ok());
}

TEST_F(ExtensionFixture, ShellFileCommands) {
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  auto* dev = vp->add_device(phone).value();
  auto& os = dev->os();
  auto ls = os.execute_shell("ls /sdcard");
  ASSERT_TRUE(ls.ok());
  EXPECT_NE(ls.value().find("/sdcard/video.mp4"), std::string::npos);
  auto stat = os.execute_shell("stat /sdcard/video.mp4");
  ASSERT_TRUE(stat.ok());
  EXPECT_NE(stat.value().find("bytes"), std::string::npos);
  ASSERT_TRUE(os.execute_shell("rm /sdcard/video.mp4").ok());
  EXPECT_FALSE(os.execute_shell("rm /sdcard/video.mp4").ok());
  EXPECT_FALSE(os.has_file("/sdcard/video.mp4"));
}

TEST_F(ExtensionFixture, AdbPushTransfersFileOverTransport) {
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  auto* dev = vp->add_device(phone).value();
  auto& adb = vp->controller().adb();
  const std::size_t mb16 = 16 * 1024 * 1024;
  const auto t0 = sim.now();
  ASSERT_TRUE(adb.push_sync(dev->host(), device::AdbTransport::kUsb,
                            "/sdcard/test.mp4", mb16)
                  .ok());
  const auto usb_elapsed = sim.now() - t0;
  EXPECT_TRUE(dev->os().has_file("/sdcard/test.mp4"));
  EXPECT_EQ(dev->os().file_size("/sdcard/test.mp4").value(), mb16);
  // USB at 480 Mbps moves 16 MB in ~0.27 s.
  EXPECT_LT(usb_elapsed, Duration::seconds(1));

  // The same push over WiFi (36 Mbps effective) takes seconds.
  const auto t1 = sim.now();
  ASSERT_TRUE(vp->usb_hub().set_port_power_for(dev->host(), false).ok());
  ASSERT_TRUE(adb.push_sync(dev->host(), device::AdbTransport::kWifi,
                            "/sdcard/test2.mp4", mb16,
                            Duration::seconds(120))
                  .ok());
  EXPECT_GT(sim.now() - t1, Duration::seconds(2));
  EXPECT_GT(sim.now() - t1, usb_elapsed * 5.0);

  // USB push with the port off fails fast.
  EXPECT_FALSE(adb.push_sync(dev->host(), device::AdbTransport::kUsb,
                             "/sdcard/test3.mp4", 1024)
                   .ok());
}

TEST_F(ExtensionFixture, VideoPlayerNeedsTheFileOnSdcard) {
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  auto* dev = vp->add_device(phone).value();
  auto player = std::make_unique<device::VideoPlayerApp>(*dev);
  auto* p = player.get();
  ASSERT_TRUE(dev->os().install(std::move(player)).ok());
  ASSERT_TRUE(dev->os().start_activity(p->package()).ok());
  EXPECT_FALSE(p->play("/sdcard/missing.mp4").ok());
  EXPECT_TRUE(p->play("/sdcard/video.mp4").ok());
}

// ------------------------------------------------- session token gating ----

TEST_F(ExtensionFixture, SharedSessionRequiresInviteToken) {
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  ASSERT_TRUE(vp->add_device(phone).ok());
  auto session = vp->start_mirroring("J7DUO-1");
  ASSERT_TRUE(session.ok());
  auto& gateway = session.value()->novnc();
  gateway.set_access_token("invite-SECRET");
  ASSERT_TRUE(gateway.token_required());

  EXPECT_FALSE(gateway.connect_viewer({"stranger", 1}, "").ok());
  EXPECT_FALSE(gateway.connect_viewer({"stranger", 1}, "wrong").ok());
  EXPECT_TRUE(gateway.connect_viewer({"tester", 2}, "invite-SECRET").ok());

  // Network-path connects carry the token in the payload.
  ASSERT_TRUE(gateway.disconnect_viewer().ok());
  net.add_link("tester", vp->controller_host(),
               net::LinkSpec::symmetric(Duration::millis(5), 50.0));
  net::Message join;
  join.src = {"tester", 9};
  join.dst = gateway.address();
  join.tag = "novnc.connect";
  join.payload = "invite-SECRET";
  ASSERT_TRUE(net.send(std::move(join)).ok());
  sim.run_for(Duration::seconds(1));
  EXPECT_TRUE(gateway.has_viewer());
}

// ------------------------------------------------------- recurring jobs ----

TEST(RecurringJobTest, MonitorSafetySweepsTheFleet) {
  sim::Simulator sim;
  net::Network net{sim, 77};
  net.add_host("internet");
  server::AccessServer server{sim, net};
  api::VantagePoint vp{sim, net};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(Duration::millis(6), 200.0));
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  ASSERT_TRUE(vp.add_device(phone).ok());
  ASSERT_TRUE(server.onboard_vantage_point("node1", vp).ok());

  const auto handle = server.schedule_recurring(
      [] { return server::make_monitor_safety_job(); },
      Duration::minutes(30));
  EXPECT_EQ(server.recurring_count(), 1u);

  // Someone leaves the Monsoon on; within one period the sweep kills it.
  ASSERT_TRUE(vp.power_socket().turn_on().ok());
  sim.run_for(Duration::minutes(31));
  EXPECT_FALSE(vp.power_socket().is_on());

  // It keeps sweeping.
  ASSERT_TRUE(vp.power_socket().turn_on().ok());
  sim.run_for(Duration::minutes(31));
  EXPECT_FALSE(vp.power_socket().is_on());

  // Until stopped.
  server.stop_recurring(handle);
  ASSERT_TRUE(vp.power_socket().turn_on().ok());
  sim.run_for(Duration::minutes(62));
  EXPECT_TRUE(vp.power_socket().is_on());
}

TEST(RecurringJobTest, CertRenewalKeepsFleetCurrentOverMonths) {
  sim::Simulator sim;
  net::Network net{sim, 78};
  net.add_host("internet");
  server::AccessServer server{sim, net};
  api::VantagePoint vp{sim, net};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(Duration::millis(6), 200.0));
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  ASSERT_TRUE(vp.add_device(phone).ok());
  ASSERT_TRUE(server.onboard_vantage_point("node1", vp).ok());

  // Power the phone down for the long fast-forward: its 150 ms power-jitter
  // task would otherwise dominate a 75-day simulation.
  vp.find_device("J7DUO-1")->power_off();

  server.schedule_recurring(
      [&server] { return server::make_cert_renewal_job(server); },
      Duration::seconds(86400.0));  // daily

  const auto first_serial = server.certs().current().serial;
  // Fast-forward 75 days: past the 60-day renewal point.
  sim.run_for(Duration::seconds(75.0 * 86400.0));
  EXPECT_GT(server.certs().current().serial, first_serial)
      << "certificate must have been renewed";
  EXPECT_TRUE(server.certs().node_current("node1"))
      << "fresh cert must have been redeployed";
  EXPECT_TRUE(server.certs().current().valid_at(sim.now()));
}

}  // namespace
}  // namespace blab
