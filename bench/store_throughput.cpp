// Chunked capture store bench: encode/decode throughput, compression ratio
// against the CSV exporter, and proof that summary queries are served from
// chunk footers and tiers without touching raw payloads.
//
// Emits one JSON object on stdout so CI can diff the numbers; exits non-zero
// if the acceptance floors (>= 4x compression, zero raw decodes for summary
// queries) are missed.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/trace_io.hpp"
#include "hw/load.hpp"
#include "hw/power_monitor.hpp"
#include "sim/simulator.hpp"
#include "store/capture_store.hpp"
#include "store/chunked_capture.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

constexpr std::size_t kSamples = 300000;  // 60 s at the Monsoon's 5 kHz
constexpr int kRounds = 5;

hw::Capture synth_capture() {
  util::Rng rng{20191113};
  std::vector<float> samples;
  samples.reserve(kSamples);
  double v = 350.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    v = std::clamp(v + rng.uniform(-8.0, 8.0), 5.0, 4500.0);
    samples.push_back(static_cast<float>(v));
  }
  return hw::Capture{util::TimePoint::epoch(), 5000.0, 3.85,
                     std::move(samples)};
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void emit(std::ostream& os, const char* key, double value, bool last = false) {
  os << "  \"" << key << "\": " << util::format_double(value, 3)
     << (last ? "\n" : ",\n");
}

/// Kernel dispatch rate: schedule-and-drain kSamples empty events, best of
/// kRounds. The store ingests captures produced by simulator-driven
/// measurements, so event throughput bounds end-to-end ingest.
double sim_events_per_s() {
  double best_s = 1e9;
  for (int r = 0; r < kRounds; ++r) {
    sim::Simulator sim;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kSamples; ++i) {
      sim.schedule_after(util::Duration::micros(static_cast<std::int64_t>(i)),
                         [] {});
    }
    if (sim.run_all() != kSamples) throw std::runtime_error{"events lost"};
    best_s = std::min(best_s, seconds_since(t0));
  }
  return static_cast<double>(kSamples) / best_s;
}

/// Capture synthesis rate: 60 s of 5 kHz Monsoon samples from a constant
/// load, best of kRounds — the producer side of every store append.
double synth_samples_per_s() {
  class SteadyLoad : public hw::Load {
   public:
    double current_ma(util::TimePoint) const override { return 350.0; }
    std::vector<std::pair<util::TimePoint, double>> current_segments(
        util::TimePoint t0, util::TimePoint) const override {
      return {{t0, 350.0}};
    }
  } load;
  double best_s = 1e9;
  for (int r = 0; r < kRounds; ++r) {
    sim::Simulator sim;
    hw::PowerMonitor monitor{sim, util::Rng{20191113}};
    monitor.set_mains(true);
    (void)monitor.set_voltage(3.85);
    monitor.connect_load(&load);
    (void)monitor.start_capture();
    sim.run_for(util::Duration::seconds(60));
    const auto t0 = std::chrono::steady_clock::now();
    auto capture = monitor.stop_capture();
    best_s = std::min(best_s, seconds_since(t0));
    if (!capture.ok() || capture.value().sample_count() != kSamples) {
      throw std::runtime_error{"synthesis produced the wrong sample count"};
    }
  }
  return static_cast<double>(kSamples) / best_s;
}

}  // namespace

int main() {
  const hw::Capture capture = synth_capture();

  // -- encode / decode throughput (best of kRounds) ----------------------
  double encode_s = 1e9;
  double decode_s = 1e9;
  store::ChunkedCapture cc;
  for (int r = 0; r < kRounds; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    cc = store::ChunkedCapture::encode(capture);
    encode_s = std::min(encode_s, seconds_since(t0));
    t0 = std::chrono::steady_clock::now();
    auto decoded = cc.decode();
    decode_s = std::min(decode_s, seconds_since(t0));
    if (!decoded.ok() ||
        decoded.value().samples_ma() != capture.samples_ma()) {
      throw std::runtime_error{"round-trip is not lossless"};
    }
  }

  // -- compression vs the CSV exporter -----------------------------------
  std::ostringstream csv;
  analysis::write_capture_csv(capture, csv);
  const double csv_bytes = static_cast<double>(csv.str().size());
  const double chunked_bytes = static_cast<double>(cc.byte_size());
  const double ratio = csv_bytes / chunked_bytes;

  // -- store queries ------------------------------------------------------
  store::CaptureStore st;
  const auto id =
      st.append("bench", "synthetic", capture, util::TimePoint::epoch());

  auto t0 = std::chrono::steady_clock::now();
  double energy = 0.0;
  double mean = 0.0;
  std::size_t cdf_points = 0;
  std::size_t agg_buckets = 0;
  for (int r = 0; r < kRounds; ++r) {
    energy = st.energy_mwh(id).value();
    mean = st.mean_ma(id).value();
    cdf_points = st.percentiles(id).value().count();
    agg_buckets = st.aggregate(id, util::Duration::seconds(1)).value().size();
  }
  const double summary_s = seconds_since(t0) / kRounds;
  const auto summary_decodes = st.stats().raw_chunk_decodes;

  t0 = std::chrono::steady_clock::now();
  std::size_t range_samples = 0;
  for (int r = 0; r < kRounds; ++r) {
    auto slice = st.range(id, util::TimePoint::epoch(),
                          util::TimePoint::epoch() +
                              util::Duration::seconds(60));
    range_samples = slice.value().sample_count();
  }
  const double range_s = seconds_since(t0) / kRounds;

  std::cout << "{\n";
  emit(std::cout, "samples", static_cast<double>(kSamples));
  emit(std::cout, "encode_msamples_per_s", kSamples / encode_s / 1e6);
  emit(std::cout, "decode_msamples_per_s", kSamples / decode_s / 1e6);
  emit(std::cout, "chunked_bytes", chunked_bytes);
  emit(std::cout, "csv_bytes", csv_bytes);
  emit(std::cout, "compression_ratio_vs_csv", ratio);
  emit(std::cout, "bytes_per_sample", chunked_bytes / kSamples);
  emit(std::cout, "summary_query_us", summary_s * 1e6);
  emit(std::cout, "summary_raw_chunk_decodes",
       static_cast<double>(summary_decodes));
  emit(std::cout, "range_query_msamples_per_s", range_samples / range_s / 1e6);
  emit(std::cout, "cdf_points", static_cast<double>(cdf_points));
  emit(std::cout, "aggregate_buckets_1s", static_cast<double>(agg_buckets));
  emit(std::cout, "energy_mwh", energy);
  emit(std::cout, "mean_ma", mean);
  emit(std::cout, "sim_events_per_s", sim_events_per_s());
  emit(std::cout, "synth_samples_per_s", synth_samples_per_s(),
       /*last=*/true);
  std::cout << "}\n";

  if (ratio < 4.0) {
    std::cerr << "FAIL: compression ratio " << util::format_double(ratio, 2)
              << " below the 4x floor\n";
    return 1;
  }
  if (summary_decodes != 0) {
    std::cerr << "FAIL: summary queries decoded " << summary_decodes
              << " raw chunks; footers/tiers should have sufficed\n";
    return 1;
  }
  return 0;
}
