// Figure 6 — Brave and Chrome energy through VPN tunnels (§4.3).
//
// Average battery discharge per VPN location for Brave and Chrome (3
// repetitions; the paper bounds the experiment to these two browsers).
// Paper shape: discharge varies little across locations (within stddev);
// the one standout is Chrome at the Japan exit, whose traffic drops ~20%
// because ads served there are systematically smaller.
#include <iostream>

#include "analysis/report.hpp"
#include "automation/browser_workload.hpp"
#include "bench/common.hpp"
#include "net/vpn.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

constexpr int kRepetitions = 3;

struct Cell {
  util::RunningStats mah;
  util::RunningStats mbytes;
};

Cell run_location(const device::BrowserProfile& profile,
                  const std::string& location) {
  Cell cell;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    bench::Testbed tb{20191113 + static_cast<std::uint64_t>(rep) * 977};
    net::VpnProvider vpn{tb.net, "internet"};
    if (auto st = vpn.connect(tb.vp->controller_host(), location); !st.ok()) {
      throw std::runtime_error{st.error().str()};
    }
    tb.device->set_network_region(location);
    tb.arm_monitor();
    automation::BrowserWorkloadOptions options;
    auto run = automation::run_browser_energy_test(*tb.api, "J7DUO-1",
                                                   profile, options);
    if (!run.ok()) throw std::runtime_error{run.error().str()};
    cell.mah.add(run.value().discharge_mah);
    cell.mbytes.add(static_cast<double>(run.value().bytes_fetched) / 1e6);
  }
  return cell;
}

}  // namespace

int main() {
  std::cout << "BatteryLab reproduction — Figure 6: energy through VPN "
               "tunnels\n(Brave and Chrome; 5 ProtonVPN exits; "
            << kRepetitions << " repetitions)\n\n";

  analysis::BarFigure fig{"Figure 6: battery discharge by VPN location",
                          "discharge (mAh)"};
  struct Row {
    std::string key;
    double mah;
    double mbytes;
  };
  std::vector<Row> rows;
  for (const char* browser : {"Brave", "Chrome"}) {
    const auto* profile = device::BrowserProfile::find(browser);
    for (const auto& loc : net::proton_vpn_locations()) {
      const Cell cell = run_location(*profile, loc.country);
      const std::string key = std::string{browser} + " @ " + loc.country;
      fig.add_bar(key, cell.mah.mean(), cell.mah.stddev());
      rows.push_back({key, cell.mah.mean(), cell.mbytes.mean()});
    }
  }
  fig.print(std::cout);
  fig.write_csv("fig6_vpn_energy.csv");

  std::cout << "\ntraffic per location (MB):\n";
  for (const auto& r : rows) {
    std::cout << "  " << r.key << ": " << util::format_double(r.mbytes, 1)
              << " MB\n";
  }
  auto traffic = [&](const std::string& key) {
    for (const auto& r : rows) {
      if (r.key == key) return r.mbytes;
    }
    return 0.0;
  };
  const double chrome_japan_drop =
      1.0 - traffic("Chrome @ Japan") / traffic("Chrome @ CA, USA");
  std::cout << "\npaper anchors: little variation across locations; Chrome's "
               "Japan traffic ~20% lower (smaller ads)\n"
            << "measured: Chrome Japan vs CA traffic drop "
            << util::format_double(chrome_japan_drop * 100.0, 1)
            << "%\nCSV: fig6_vpn_energy.csv\n";
  return 0;
}
