// Figure 3 — Per-browser energy consumption (§4.2).
//
// Average battery discharge (stddev as error bars) for Chrome, Firefox,
// Edge and Brave running the 10-news-site workload, with device mirroring
// active and inactive; 5 repetitions each.
// Paper shape: Brave minimal, Firefox maximal, ordering unchanged by
// mirroring, and mirroring adds a roughly constant offset to every browser.
#include <iostream>

#include "analysis/report.hpp"
#include "automation/browser_workload.hpp"
#include "bench/common.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

constexpr int kRepetitions = 5;

struct Cell {
  util::RunningStats discharge_mah;
  util::RunningStats energy_mwh;  ///< from the capture store's footers
};

Cell run_browser(const device::BrowserProfile& profile, bool mirroring) {
  Cell cell;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    bench::Testbed tb{20191113 + static_cast<std::uint64_t>(rep) * 101};
    tb.arm_monitor();
    automation::BrowserWorkloadOptions options;  // paper defaults: 10 pages
    options.mirroring = mirroring;
    auto run = automation::run_browser_energy_test(*tb.api, "J7DUO-1",
                                                   profile, options);
    if (!run.ok()) throw std::runtime_error{run.error().str()};
    cell.discharge_mah.add(run.value().discharge_mah);
    // Cross-check against the archived capture: integrated energy served
    // from chunk footers, no raw decode.
    auto energy = tb.store.energy_mwh(*tb.api->last_capture_id());
    if (!energy.ok()) throw std::runtime_error{energy.error().str()};
    cell.energy_mwh.add(energy.value());
  }
  return cell;
}

}  // namespace

int main() {
  std::cout << "BatteryLab reproduction — Figure 3: per-browser energy\n"
            << "(10 news sites x 6 s + scrolls, " << kRepetitions
            << " repetitions, mirroring on/off)\n\n";

  analysis::BarFigure fig{"Figure 3: average battery discharge",
                          "discharge (mAh)"};
  struct Row {
    std::string browser;
    double plain = 0.0;
    double mirrored = 0.0;
    double plain_mwh = 0.0;
  };
  std::vector<Row> rows;
  for (const char* name : {"Brave", "Chrome", "Edge", "Firefox"}) {
    const auto* profile = device::BrowserProfile::find(name);
    const Cell plain = run_browser(*profile, false);
    const Cell mirrored = run_browser(*profile, true);
    fig.add_bar(std::string{name}, plain.discharge_mah.mean(),
                plain.discharge_mah.stddev());
    fig.add_bar(std::string{name} + "+mirroring",
                mirrored.discharge_mah.mean(),
                mirrored.discharge_mah.stddev());
    rows.push_back({name, plain.discharge_mah.mean(),
                    mirrored.discharge_mah.mean(),
                    plain.energy_mwh.mean()});
  }
  fig.print(std::cout);
  fig.write_csv("fig3_browser_energy.csv");

  std::cout << "\nmirroring overhead per browser (paper: roughly constant):\n";
  for (const auto& r : rows) {
    std::cout << "  " << r.browser << ": +"
              << util::format_double(r.mirrored - r.plain, 2) << " mAh\n";
  }
  std::cout << "\nstore-backed energy (chunk footers, no raw decode):\n";
  for (const auto& r : rows) {
    std::cout << "  " << r.browser << ": "
              << util::format_double(r.plain_mwh, 2) << " mWh\n";
  }
  auto by = [&](const std::string& name) {
    for (const auto& r : rows) {
      if (r.browser == name) return r.plain;
    }
    return 0.0;
  };
  std::cout << "\npaper anchors: Brave minimal, Firefox maximal; ordering "
               "independent of mirroring\n"
            << "measured ordering holds: "
            << (by("Brave") < by("Chrome") && by("Brave") < by("Edge") &&
                        by("Firefox") > by("Chrome") &&
                        by("Firefox") > by("Edge")
                    ? "YES"
                    : "NO")
            << "\nCSV: fig3_browser_energy.csv\n";
  return 0;
}
