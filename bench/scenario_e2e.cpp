// End-to-end DST scenario bench: drives whole fuzzed deployments (access
// server + vantage points + device zoo + faults + oracles) through the
// worker-pool corpus runner and reports scenario and simulator-event
// throughput. This is the macro companion to micro_core's kernel benches —
// it exercises the schedule/cancel/fire hot path under the real platform
// workload instead of empty callbacks.
//
// Usage: scenario_e2e [--jobs=N] [--seeds=N] [--rounds=N] [--metrics-out=P]
//                     [--trace-out=P]
//   --jobs=N         worker-pool width (0 = hardware concurrency, default 1
//                    so the pinned baseline measures single-thread speed)
//   --seeds=N        corpus size per round (default 16)
//   --rounds=N       repetitions; the best round is reported (default 3)
//   --metrics-out=P  write the corpus-merged telemetry snapshot (Prometheus
//                    text) to P — the per-run metrics artifact ci_bench.sh
//                    archives next to BENCH_core.json
//   --trace-out=P    write the corpus-merged span set as Chrome trace-event
//                    JSON (one Perfetto process per seed) to P
//
// Emits one JSON object on stdout so ci_bench.sh can fold the numbers into
// BENCH_core.json; exits non-zero if any scenario trips an oracle or runs
// zero events (a perf number from a broken run would be meaningless).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "testing/harness.hpp"
#include "testing/scenario.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void emit(std::ostream& os, const char* key, double value, bool last = false) {
  os << "  \"" << key << "\": " << util::format_double(value, 3)
     << (last ? "\n" : ",\n");
}

unsigned long flag_value(std::string_view arg, std::string_view name) {
  return std::strtoul(arg.substr(name.size()).data(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = 1;
  std::size_t n_seeds = 16;
  int rounds = 3;
  std::string metrics_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(flag_value(arg, "--jobs="));
    } else if (arg.rfind("--seeds=", 0) == 0) {
      n_seeds = flag_value(arg, "--seeds=");
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = static_cast<int>(flag_value(arg, "--rounds="));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(sizeof("--metrics-out=") - 1);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(sizeof("--trace-out=") - 1);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  util::Logger::global().set_level(util::LogLevel::kOff);

  const auto seeds = testing::default_corpus(n_seeds);
  double best_s = 1e300;
  std::uint64_t events = 0;
  std::size_t captures = 0;
  std::size_t violations = 0;
  obs::MetricsSnapshot merged;
  std::string merged_trace;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = testing::run_corpus(seeds, jobs);
    const double wall = seconds_since(t0);
    events = 0;
    captures = 0;
    violations = 0;
    std::vector<obs::MetricsSnapshot> snaps;
    snaps.reserve(results.size());
    for (const auto& result : results) {
      events += result.events_executed;
      captures += result.captures;
      violations += result.violations.size();
      snaps.push_back(result.metrics);
    }
    // Every round runs the identical corpus, so the merged snapshot is the
    // same whichever round produced it; keep the last.
    merged = obs::merge_snapshots(snaps);
    if (!trace_out.empty()) {
      std::vector<std::pair<std::uint64_t, const std::vector<obs::SpanRecord>*>>
          per_seed;
      per_seed.reserve(results.size());
      for (const auto& result : results) {
        per_seed.emplace_back(result.seed, &result.spans);
      }
      merged_trace = obs::encode_trace_json_corpus(per_seed);
    }
    if (wall < best_s) best_s = wall;
  }

  if (!metrics_out.empty()) {
    std::ofstream out{metrics_out};
    if (!out) {
      std::cerr << "cannot write metrics artifact: " << metrics_out << "\n";
      return 2;
    }
    out << obs::encode_prometheus(merged);
  }
  if (!trace_out.empty()) {
    std::ofstream out{trace_out};
    if (!out) {
      std::cerr << "cannot write trace artifact: " << trace_out << "\n";
      return 2;
    }
    out << merged_trace;
  }

  std::cout << "{\n";
  emit(std::cout, "scenarios", static_cast<double>(seeds.size()));
  emit(std::cout, "jobs", static_cast<double>(jobs));
  emit(std::cout, "rounds", static_cast<double>(rounds));
  emit(std::cout, "best_wall_s", best_s);
  emit(std::cout, "scenarios_per_s",
       static_cast<double>(seeds.size()) / best_s);
  emit(std::cout, "events_executed", static_cast<double>(events));
  emit(std::cout, "events_per_s", static_cast<double>(events) / best_s);
  emit(std::cout, "captures", static_cast<double>(captures));
  emit(std::cout, "oracle_violations", static_cast<double>(violations),
       /*last=*/true);
  std::cout << "}\n";

  if (violations != 0) {
    std::cerr << "FAIL: " << violations << " oracle violation(s) during the "
              << "bench corpus; perf numbers from a broken run are invalid\n";
    return 1;
  }
  if (events == 0) {
    std::cerr << "FAIL: bench corpus executed zero simulator events\n";
    return 1;
  }
  return 0;
}
