// Figure 2 — Accuracy of battery reporting (§4.1).
//
// CDF of current drawn during a 5-minute local mp4 playback under four
// wiring scenarios: direct, relay, direct-mirroring, relay-mirroring.
// Paper shape: direct and relay coincide; mirroring lifts the median from
// ~160 mA to ~220 mA regardless of wiring.
#include <iostream>

#include "analysis/report.hpp"
#include "bench/common.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

constexpr auto kTestDuration = util::Duration::minutes(5);

util::Cdf run_scenario(bool use_relay, bool mirroring, std::uint64_t seed) {
  bench::Testbed tb{seed};
  tb.start_video();

  if (mirroring) {
    if (auto st = tb.api->device_mirroring("J7DUO-1"); !st.ok()) {
      throw std::runtime_error{st.error().str()};
    }
  }
  tb.arm_monitor();

  if (!use_relay) {
    // Direct scenario: the phone's terminals go straight to the Monsoon,
    // following the vendor's wiring instructions — no relay in the path.
    tb.vp->monitor().connect_load(tb.device);
  }
  // Either way the measurement protocol is the API's: USB cut, bypass, 5 kHz.
  auto capture = tb.api->run_monitor("J7DUO-1", kTestDuration);
  if (!capture.ok()) throw std::runtime_error{capture.error().str()};
  if (mirroring) (void)tb.api->device_mirroring("J7DUO-1", false);
  // The capture was archived by stop_monitor; the CDF comes from the store's
  // 50 Hz downsample tier, not a fresh pass over 1.5 M raw samples.
  auto cdf = tb.store.percentiles(*tb.api->last_capture_id());
  if (!cdf.ok()) throw std::runtime_error{cdf.error().str()};
  return cdf.value();
}

}  // namespace

int main() {
  std::cout << "BatteryLab reproduction — Figure 2: CDF of current drawn\n"
            << "(5-minute local video playback; 4 wiring scenarios)\n\n";

  analysis::CdfFigure fig{"Figure 2: CDF of current drawn", "current (mA)"};
  struct Scenario {
    const char* label;
    bool relay;
    bool mirroring;
  };
  const Scenario scenarios[] = {
      {"direct", false, false},
      {"relay", true, false},
      {"direct-mirroring", false, true},
      {"relay-mirroring", true, true},
  };
  for (const auto& s : scenarios) {
    fig.add_series(s.label, run_scenario(s.relay, s.mirroring, 20191113));
  }
  fig.print(std::cout);
  fig.write_csv("fig2_accuracy.csv");

  const auto& series = fig.series();
  const double direct_med = series[0].cdf.median();
  const double relay_med = series[1].cdf.median();
  const double mirror_med = series[3].cdf.median();
  std::cout << "\npaper anchors: direct/relay medians coincide near 160 mA;"
            << " mirroring median near 220 mA\n"
            << "measured: direct " << util::format_double(direct_med, 1)
            << " mA, relay " << util::format_double(relay_med, 1)
            << " mA (delta "
            << util::format_double(relay_med - direct_med, 2)
            << " mA), relay-mirroring "
            << util::format_double(mirror_med, 1) << " mA (delta +"
            << util::format_double(mirror_med - relay_med, 1) << " mA)\n"
            << "CSV: fig2_accuracy.csv\n";
  return 0;
}
