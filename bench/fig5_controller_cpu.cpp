// Figure 5 — CDF of CPU consumption at the controller (§4.2).
//
// Raspberry Pi 3B+ CPU utilization during the Chrome workload, with device
// mirroring active and inactive.
// Paper shape: without mirroring the Pi sits at a constant ~25% (Monsoon
// polling); with mirroring the median rises to ~75% and ~10% of samples
// exceed 95%.
#include <iostream>

#include "analysis/report.hpp"
#include "automation/browser_workload.hpp"
#include "bench/common.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

util::Cdf run_controller_cpu(bool mirroring) {
  bench::Testbed tb{20191113};
  tb.arm_monitor();
  automation::BrowserWorkloadOptions options;
  options.mirroring = mirroring;
  auto run = automation::run_browser_energy_test(
      *tb.api, "J7DUO-1", device::BrowserProfile::chrome(), options);
  if (!run.ok()) throw std::runtime_error{run.error().str()};
  util::Cdf percent;
  for (double u : run.value().controller_cpu.samples()) percent.add(u * 100.0);
  return percent;
}

}  // namespace

int main() {
  std::cout << "BatteryLab reproduction — Figure 5: CDF of controller CPU\n"
            << "(Chrome workload on the Raspberry Pi 3B+; mirroring on/off)\n\n";

  analysis::CdfFigure fig{"Figure 5: CDF of controller CPU utilization",
                          "CPU (%)"};
  fig.add_series("mirroring inactive", run_controller_cpu(false));
  fig.add_series("mirroring active", run_controller_cpu(true));
  fig.print(std::cout);
  fig.write_csv("fig5_controller_cpu.csv");

  const auto& s = fig.series();
  const double over95 = s[1].cdf.fraction_above(95.0) * 100.0;
  std::cout << "\npaper anchors: ~25% flat without mirroring; median ~75% "
               "and ~10% of samples >95% with mirroring\n"
            << "measured: inactive median "
            << util::format_double(s[0].cdf.median(), 1)
            << "%, active median "
            << util::format_double(s[1].cdf.median(), 1) << "%, samples >95%: "
            << util::format_double(over95, 1)
            << "%\nCSV: fig5_controller_cpu.csv\n";
  return 0;
}
