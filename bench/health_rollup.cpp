// Fleet-health rollup bench: folds a synthetic persisted catalog through
// health::RollupEngine at every scope and reports catalog-scan throughput.
// Building the store is untimed setup — the timed region is exactly what one
// GET /rollup request does (catalog scan + footer-summary fold + JSON-ready
// grouping), so the pinned rollup_captures_per_s metric gates the health
// engine's read path.
//
// Usage: health_rollup [--captures=N] [--samples=N] [--rounds=N] [--iters=N]
//                      [--out=P]
//   --captures=N  catalog size (default 400)
//   --samples=N   samples per capture (default 6000; 1.2 s at 5 kHz)
//   --rounds=N    repetitions; the best round is reported (default 5)
//   --iters=N     fleet+job+vantage compute passes per round (default 20)
//   --out=P       also write the JSON result object to P (the
//                 BENCH_health.json artifact ci_bench.sh archives)
//
// Emits one JSON object on stdout so ci_bench.sh can fold the numbers into
// BENCH_core.json; exits non-zero if the fold disagrees with an independent
// sum over the same footers (a perf number from a wrong rollup would be
// meaningless).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "hw/power_monitor.hpp"
#include "obs/health/rollup.hpp"
#include "store/capture_store.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void emit(std::ostream& os, const char* key, double value, bool last = false) {
  os << "  \"" << key << "\": " << util::format_double(value, 3)
     << (last ? "\n" : ",\n");
}

unsigned long flag_value(std::string_view arg, std::string_view name) {
  return std::strtoul(arg.substr(name.size()).data(), nullptr, 10);
}

hw::Capture make_capture(std::uint64_t seed, std::size_t n) {
  util::Rng rng{seed};
  std::vector<float> samples;
  samples.reserve(n);
  double v = rng.uniform(150.0, 600.0);
  for (std::size_t i = 0; i < n; ++i) {
    v = std::clamp(v + rng.uniform(-8.0, 8.0), 5.0, 4500.0);
    samples.push_back(static_cast<float>(v));
  }
  return hw::Capture{util::TimePoint::epoch(), 5000.0, 3.85, samples};
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_captures = 400;
  std::size_t n_samples = 6000;
  int rounds = 5;
  int iters = 20;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--captures=", 0) == 0) {
      n_captures = flag_value(arg, "--captures=");
    } else if (arg.rfind("--samples=", 0) == 0) {
      n_samples = flag_value(arg, "--samples=");
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = static_cast<int>(flag_value(arg, "--rounds="));
    } else if (arg.rfind("--iters=", 0) == 0) {
      iters = static_cast<int>(flag_value(arg, "--iters="));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(sizeof("--out=") - 1);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  util::Logger::global().set_level(util::LogLevel::kOff);

  // Untimed setup: a catalog shaped like a real deployment's — a few dozen
  // job workspaces spread across a handful of vantage points, captures
  // stored at distinct times so the window filter has real work to do.
  constexpr std::size_t kWorkspaces = 24;
  constexpr std::size_t kVantages = 6;
  store::CaptureStore store;
  for (std::size_t i = 0; i < n_captures; ++i) {
    const std::string workspace = "job-" + std::to_string(i % kWorkspaces);
    const auto stored =
        util::TimePoint::epoch() + util::Duration::seconds(1.0 * i);
    (void)store.append(workspace, "m" + std::to_string(i),
                       make_capture(1000 + i, n_samples), stored);
  }
  // The engine folds in ascending CaptureId order; sum the same way so the
  // correctness gate below can demand bit equality.
  double expect_energy = 0.0;
  for (const auto& id :
       store.catalog(util::TimePoint::epoch(), util::TimePoint::max())) {
    if (auto e = store.energy_mwh(id); e.ok()) expect_energy += e.value();
  }

  health::RollupEngine engine{store};
  engine.set_context_resolver([](const std::string& workspace) {
    // job-N -> vp-(N % kVantages), alternating device class.
    const std::size_t n = std::strtoul(workspace.c_str() + 4, nullptr, 10);
    health::CaptureContext ctx;
    ctx.vantage = "vp-" + std::to_string(n % kVantages);
    ctx.device_class = (n % 2 == 0) ? "android-phone" : "ios-phone";
    ctx.owner = "bench";
    return ctx;
  });

  // Correctness gate before timing: the fleet fold must equal the plain
  // ascending-id sum over the same footers (the DST oracle's contract).
  {
    const auto fleet = engine.compute(health::RollupScope::kFleet);
    if (fleet.captures_scanned != n_captures || fleet.groups.size() != 1 ||
        fleet.groups.front().energy_mwh != expect_energy) {
      std::cerr << "FAIL: fleet rollup disagrees with the independent fold\n";
      return 1;
    }
  }

  double best_s = 1e300;
  std::uint64_t sink = 0;  // folded results feed this so the loop can't DCE
  std::size_t groups = 0;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) {
      std::size_t group_count = 0;
      for (const auto scope :
           {health::RollupScope::kFleet, health::RollupScope::kJob,
            health::RollupScope::kVantage}) {
        const health::Rollup rollup = engine.compute(scope);
        sink += rollup.captures_scanned + rollup.groups.size();
        group_count += rollup.groups.size();
      }
      groups = group_count;
    }
    const double wall = seconds_since(t0);
    if (wall < best_s) best_s = wall;
  }

  // Three scopes scan the full catalog once each per iteration.
  const double scanned = 3.0 * static_cast<double>(n_captures) *
                         static_cast<double>(iters);
  std::ostringstream doc;
  doc << "{\n";
  emit(doc, "captures", static_cast<double>(n_captures));
  emit(doc, "samples_per_capture", static_cast<double>(n_samples));
  emit(doc, "workspaces", static_cast<double>(kWorkspaces));
  emit(doc, "vantages", static_cast<double>(kVantages));
  emit(doc, "groups", static_cast<double>(groups));
  emit(doc, "iters", static_cast<double>(iters));
  emit(doc, "rounds", static_cast<double>(rounds));
  emit(doc, "best_wall_s", best_s);
  emit(doc, "rollup_computes_per_s", 3.0 * iters / best_s);
  emit(doc, "rollup_captures_per_s", scanned / best_s, /*last=*/true);
  doc << "}\n";
  std::cout << doc.str();
  if (!out_path.empty()) {
    std::ofstream out{out_path};
    if (!out) {
      std::cerr << "cannot write artifact: " << out_path << "\n";
      return 2;
    }
    out << doc.str();
  }
  return sink == 0 ? 1 : 0;
}
