// Table 2 — ProtonVPN statistics (§4.3).
//
// SpeedTest (download / upload / RTT) from the vantage-point controller
// through each of the five VPN exits, against a speedtest server adjacent
// to the exit node.
// Paper values: South Africa 6.26/9.77/222.04, China 7.64/7.77/286.32,
// Japan 9.68/7.76/239.38, Brazil 9.75/8.82/235.05, CA 10.63/14.87/215.16.
#include <iostream>

#include "analysis/report.hpp"
#include "bench/common.hpp"
#include "net/speedtest.hpp"
#include "net/vpn.hpp"
#include "util/strings.hpp"

using namespace blab;

int main() {
  std::cout << "BatteryLab reproduction — Table 2: ProtonVPN statistics\n"
            << "(speedtest through each VPN tunnel; D=down, U=up, L=RTT)\n\n";

  bench::Testbed tb{20191113};
  net::VpnProvider vpn{tb.net, "internet"};

  analysis::TableReport table{
      "Table 2: ProtonVPN statistics",
      {"location", "server (km)", "D (Mbps)", "U (Mbps)", "L (ms)",
       "paper D", "paper U", "paper L"}};

  const std::string client = tb.vp->controller_host();
  for (const auto& loc : vpn.locations()) {
    if (auto st = vpn.connect(client, loc.country); !st.ok()) {
      std::cerr << "vpn connect failed: " << st.error().str() << "\n";
      return 1;
    }
    net::SpeedTest st{tb.net, client, "speedtest"};
    auto result = st.run();
    if (!result.ok()) {
      std::cerr << "speedtest failed: " << result.error().str() << "\n";
      return 1;
    }
    table.add_row({loc.country + " / " + loc.city,
                   util::format_double(loc.server_distance_km, 2),
                   util::format_double(result.value().download_mbps, 2),
                   util::format_double(result.value().upload_mbps, 2),
                   util::format_double(result.value().rtt_ms, 2),
                   util::format_double(loc.down_mbps, 2),
                   util::format_double(loc.up_mbps, 2),
                   util::format_double(loc.rtt_ms, 2)});
    (void)vpn.disconnect(client);
  }
  table.print(std::cout);
  table.write_csv("table2_vpn.csv");
  std::cout << "\npaper shape: South Africa slowest download, CA fastest; "
               "China highest RTT\nCSV: table2_vpn.csv\n";
  return 0;
}
