// Figure 4 — CDF of device CPU consumption (§4.2).
//
// CPU utilization of the test device during the browser workload, for Brave
// and Chrome, with mirroring active and inactive.
// Paper shape: Brave's median ~12% vs Chrome's ~20%; mirroring adds ~5%
// for both, most visible at the high end.
#include <iostream>

#include "analysis/report.hpp"
#include "automation/browser_workload.hpp"
#include "bench/common.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

util::Cdf run_cpu(const device::BrowserProfile& profile, bool mirroring) {
  bench::Testbed tb{20191113};
  tb.arm_monitor();
  automation::BrowserWorkloadOptions options;
  options.mirroring = mirroring;
  auto run = automation::run_browser_energy_test(*tb.api, "J7DUO-1", profile,
                                                 options);
  if (!run.ok()) throw std::runtime_error{run.error().str()};
  // Express utilization as percent, like the paper's axis.
  util::Cdf percent;
  for (double u : run.value().device_cpu.samples()) percent.add(u * 100.0);
  return percent;
}

}  // namespace

int main() {
  std::cout << "BatteryLab reproduction — Figure 4: CDF of device CPU\n"
            << "(browser workload; Brave vs Chrome; mirroring on/off)\n\n";

  analysis::CdfFigure fig{"Figure 4: CDF of device CPU utilization",
                          "CPU (%)"};
  fig.add_series("Brave", run_cpu(device::BrowserProfile::brave(), false));
  fig.add_series("Brave+mirroring",
                 run_cpu(device::BrowserProfile::brave(), true));
  fig.add_series("Chrome", run_cpu(device::BrowserProfile::chrome(), false));
  fig.add_series("Chrome+mirroring",
                 run_cpu(device::BrowserProfile::chrome(), true));
  fig.print(std::cout);
  fig.write_csv("fig4_device_cpu.csv");

  const auto& s = fig.series();
  std::cout << "\npaper anchors: Brave median ~12%, Chrome median ~20%, "
               "mirroring +~5%\n"
            << "measured medians: Brave "
            << util::format_double(s[0].cdf.median(), 1) << "% (+"
            << util::format_double(s[1].cdf.median() - s[0].cdf.median(), 1)
            << " with mirroring), Chrome "
            << util::format_double(s[2].cdf.median(), 1) << "% (+"
            << util::format_double(s[3].cdf.median() - s[2].cdf.median(), 1)
            << " with mirroring)\nCSV: fig4_device_cpu.csv\n";
  return 0;
}
