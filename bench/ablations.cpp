// Ablations over BatteryLab's design choices (DESIGN.md §4).
//
// Four sweeps quantify why the system is built the way it is:
//   A. Relay contact loss — how much measurement error does the circuit
//      switch introduce before it would become visible in Fig. 2?
//   B. scrcpy bitrate cap — the paper picks 1 Mbps; what do other caps cost
//      in upload volume and device power?
//   C. Monsoon sampling rate — how coarse can sampling get before the
//      charge estimate of a bursty workload degrades?
//   D. noVNC compression — upload volume across the compression range
//      (the paper's observed 32 MB corresponds to ~0.61).
#include <iostream>

#include "analysis/report.hpp"
#include "automation/browser_workload.hpp"
#include "bench/common.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

// ---- A: relay contact loss ------------------------------------------------

void ablation_relay_loss() {
  analysis::TableReport table{
      "Ablation A: relay contact loss vs measurement error",
      {"loss fraction", "direct median (mA)", "relay median (mA)",
       "error (%)"}};
  for (double loss : {0.0, 0.002, 0.01, 0.05}) {
    // Direct reference.
    double direct_median = 0.0;
    {
      bench::Testbed tb{20191113};
      tb.start_video();
      tb.arm_monitor();
      tb.vp->monitor().connect_load(tb.device);
      auto capture =
          tb.api->run_monitor("J7DUO-1", util::Duration::seconds(60));
      direct_median = capture.value().current_cdf(10).median();
    }
    double relay_median = 0.0;
    {
      api::VantagePointConfig config;
      config.relay.contact_loss_fraction = loss;
      sim::Simulator sim;
      net::Network net{sim, 20191113};
      net.add_host("internet");
      net.add_link("web", "internet",
                   net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));
      api::VantagePoint vp{sim, net, config};
      net.add_link(vp.controller_host(), "internet",
                   net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));
      device::DeviceSpec phone;
      phone.serial = "J7DUO-1";
      auto* dev = vp.add_device(phone).value();
      auto player = std::make_unique<device::VideoPlayerApp>(*dev);
      auto* p = player.get();
      (void)dev->os().install(std::move(player));
      (void)dev->os().start_activity(p->package());
      (void)p->play("/sdcard/video.mp4");
      api::BatteryLabApi api{vp};
      (void)api.power_monitor();
      (void)api.set_voltage(3.85);
      auto capture = api.run_monitor("J7DUO-1", util::Duration::seconds(60));
      relay_median = capture.value().current_cdf(10).median();
    }
    table.add_row({util::format_double(loss, 3),
                   util::format_double(direct_median, 1),
                   util::format_double(relay_median, 1),
                   util::format_double(
                       (relay_median / direct_median - 1.0) * 100.0, 2)});
  }
  table.print(std::cout);
  std::cout << "-> at the deployed 0.002 the relay is invisible; an order of"
               " magnitude worse would still sit inside Fig. 2's noise.\n\n";
}

// ---- B: encoder bitrate cap -----------------------------------------------

void ablation_bitrate() {
  analysis::TableReport table{
      "Ablation B: scrcpy bitrate cap (1-minute mirrored video)",
      {"cap (Mbps)", "device mean (mA)", "upload (MB/min)"}};
  for (double cap : {0.5, 1.0, 2.0, 4.0}) {
    api::VantagePointConfig config;
    config.encoder.bitrate_cap_mbps = cap;
    sim::Simulator sim;
    net::Network net{sim, 20191113};
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));
    api::VantagePoint vp{sim, net, config};
    net.add_link(vp.controller_host(), "internet",
                 net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));
    device::DeviceSpec phone;
    phone.serial = "J7DUO-1";
    auto* dev = vp.add_device(phone).value();
    auto player = std::make_unique<device::VideoPlayerApp>(*dev);
    auto* p = player.get();
    (void)dev->os().install(std::move(player));
    (void)dev->os().start_activity(p->package());
    (void)p->play("/sdcard/video.mp4");
    net.add_link("viewer", vp.controller_host(),
                 net::LinkSpec::symmetric(util::Duration::micros(500), 100.0));
    net.listen({"viewer", 7200}, [](const net::Message&) {});
    api::BatteryLabApi api{vp};
    (void)api.device_mirroring("J7DUO-1");
    (void)vp.mirroring("J7DUO-1")->attach_viewer({"viewer", 7200});
    (void)api.power_monitor();
    (void)api.set_voltage(3.85);
    net.reset_stats();
    auto capture = api.run_monitor("J7DUO-1", util::Duration::minutes(1));
    const double upload_mb =
        static_cast<double>(net.stats("viewer").bytes_rx) / 1e6;
    table.add_row({util::format_double(cap, 1),
                   util::format_double(capture.value().mean_current_ma(), 1),
                   util::format_double(upload_mb, 2)});
  }
  table.print(std::cout);
  std::cout << "-> above 1 Mbps the cap stops binding for this content: the"
               " paper's choice is the knee of the curve.\n\n";
}

// ---- C: sampling rate -----------------------------------------------------

void ablation_sampling_rate() {
  analysis::TableReport table{
      "Ablation C: Monsoon sampling rate (bursty browser workload)",
      {"rate (Hz)", "mean (mA)", "charge (mAh)", "p99 (mA)"}};
  for (double hz : {50.0, 500.0, 5000.0}) {
    api::VantagePointConfig config;
    config.monsoon.sample_hz = hz;
    sim::Simulator sim;
    net::Network net{sim, 20191113};
    net.add_host("internet");
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));
    api::VantagePoint vp{sim, net, config};
    net.add_link(vp.controller_host(), "internet",
                 net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));
    device::DeviceSpec phone;
    phone.serial = "J7DUO-1";
    (void)vp.add_device(phone);
    api::BatteryLabApi api{vp};
    (void)api.power_monitor();
    (void)api.set_voltage(3.85);
    automation::BrowserWorkloadOptions options;
    options.pages = 3;
    options.scrolls_per_page = 3;
    auto run = automation::run_browser_energy_test(
        api, "J7DUO-1", device::BrowserProfile::chrome(), options);
    const auto cdf = run.value().capture.current_cdf(
        hz >= 5000.0 ? 10 : 1);
    table.add_row({util::format_double(hz, 0),
                   util::format_double(run.value().mean_current_ma, 2),
                   util::format_double(run.value().discharge_mah, 3),
                   util::format_double(cdf.quantile(0.99), 1)});
  }
  table.print(std::cout);
  std::cout << "-> mean charge is robust to rate; the tails (p99, the spikes"
               " hardware designers care about) need the full 5 kHz.\n\n";
}

// ---- D: noVNC compression -------------------------------------------------

void ablation_compression() {
  analysis::TableReport table{
      "Ablation D: noVNC compression (1-minute mirrored video)",
      {"ratio", "upload (MB/min)", "scaled to 7 min"}};
  for (double ratio : {1.0, 0.8, 0.61, 0.4}) {
    bench::Testbed tb{20191113};
    tb.start_video();
    tb.net.add_link("viewer", tb.vp->controller_host(),
                    net::LinkSpec::symmetric(util::Duration::micros(500),
                                             100.0));
    tb.net.listen({"viewer", 7200}, [](const net::Message&) {});
    (void)tb.api->device_mirroring("J7DUO-1");
    auto* session = tb.vp->mirroring("J7DUO-1");
    session->novnc().set_compression_ratio(ratio);
    (void)session->attach_viewer({"viewer", 7200});
    tb.arm_monitor();
    tb.net.reset_stats();
    (void)tb.api->run_monitor("J7DUO-1", util::Duration::minutes(1));
    const double upload_mb =
        static_cast<double>(tb.net.stats("viewer").bytes_rx) / 1e6;
    table.add_row({util::format_double(ratio, 2),
                   util::format_double(upload_mb, 2),
                   util::format_double(upload_mb * 7.0, 1)});
  }
  table.print(std::cout);
  std::cout << "-> the paper's observed 32 MB/7 min sits at ratio ~0.61; "
               "without compression the 1 Mbps stream hits its 50 MB bound.\n";
}

}  // namespace

int main() {
  std::cout << "BatteryLab reproduction — design ablations\n\n";
  ablation_relay_loss();
  ablation_bitrate();
  ablation_sampling_rate();
  ablation_compression();
  return 0;
}
