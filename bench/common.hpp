// Shared deployment builder for the benchmark harnesses.
//
// Each bench binary reconstructs the paper's first vantage point (Imperial
// College London: Monsoon + Samsung J7 Duo + Raspberry Pi 3B+ + Meross
// socket) against a small simulated internet, with deterministic seeds.
#pragma once

#include <memory>
#include <string>

#include "api/batterylab_api.hpp"
#include "api/vantage_point.hpp"
#include "device/android.hpp"
#include "device/video_player.hpp"
#include "net/vpn.hpp"
#include "store/capture_store.hpp"
#include "util/logging.hpp"

namespace blab::bench {

struct Testbed {
  explicit Testbed(std::uint64_t seed = 20191113)
      : net{sim, seed}, vpn_seed{seed} {
    util::Logger::global().set_level(util::LogLevel::kOff);
    net.add_host("internet");
    // Web content origin and a speedtest server, both well-connected.
    net.add_link("web", "internet",
                 net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));
    net.add_link("speedtest", "internet",
                 net::LinkSpec::symmetric(util::Duration::millis(1), 1000.0));

    api::VantagePointConfig config;
    config.name = "node1";
    config.seed = seed;
    vp = std::make_unique<api::VantagePoint>(sim, net, config);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));

    device::DeviceSpec phone;  // Samsung J7 Duo, Android 8.0 defaults
    phone.serial = "J7DUO-1";
    auto added = vp->add_device(phone);
    if (!added.ok()) throw std::runtime_error{added.error().str()};
    device = added.value();
    api = std::make_unique<api::BatteryLabApi>(*vp);
    // Every stop_monitor lands in the store; benches query tiers from it.
    api->attach_capture_store(&store, "bench");
  }

  /// Install the video player and start looped local playback (Fig. 2).
  device::VideoPlayerApp& start_video() {
    auto player = std::make_unique<device::VideoPlayerApp>(*device);
    auto* ptr = player.get();
    (void)device->os().install(std::move(player));
    (void)device->os().start_activity(ptr->package());
    (void)ptr->play("/sdcard/video.mp4");
    return *ptr;
  }

  /// Power the monitor and program the J7's nominal pack voltage.
  void arm_monitor(double voltage = 3.85) {
    if (!api->monitor_powered()) (void)api->power_monitor();
    (void)api->set_voltage(voltage);
  }

  sim::Simulator sim;
  net::Network net;
  store::CaptureStore store;
  std::unique_ptr<api::VantagePoint> vp;
  device::AndroidDevice* device = nullptr;
  std::unique_ptr<api::BatteryLabApi> api;
  std::uint64_t vpn_seed;
};

}  // namespace blab::bench
