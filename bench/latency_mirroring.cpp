// §4.2 latency experiment — responsiveness of device mirroring.
//
// The paper measures the time between a click in the browser and the first
// frame showing the visual response, over 40 trials while co-located with
// the vantage point (1 ms network latency): 1.44 ± 0.12 s.
#include <iostream>

#include "bench/common.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace blab;

int main() {
  std::cout << "BatteryLab reproduction — mirroring latency (§4.2)\n"
            << "(40 click-to-display trials, co-located viewer)\n\n";

  bench::Testbed tb{20191113};
  tb.start_video();  // moving content keeps the encoder honest
  // Co-located experimenter: 1 ms RTT like the paper.
  tb.net.add_link("viewer", tb.vp->controller_host(),
                  net::LinkSpec::symmetric(util::Duration::micros(500),
                                           100.0));
  if (auto st = tb.api->device_mirroring("J7DUO-1"); !st.ok()) {
    std::cerr << st.error().str() << "\n";
    return 1;
  }
  auto* session = tb.vp->mirroring("J7DUO-1");
  (void)session->attach_viewer({"viewer", 7100});

  util::RunningStats stats;
  util::Cdf cdf;
  for (int trial = 0; trial < 40; ++trial) {
    auto latency = session->measure_latency_sync({"viewer", 7100}, 540, 900);
    if (!latency.ok()) {
      std::cerr << "probe failed: " << latency.error().str() << "\n";
      return 1;
    }
    stats.add(latency.value().to_seconds());
    cdf.add(latency.value().to_seconds());
    tb.sim.run_for(util::Duration::seconds(2));  // paced like hand clicks
  }

  util::TextTable table{{"metric", "measured", "paper"}};
  table.add_row({"mean (s)", util::format_double(stats.mean(), 3), "1.44"});
  table.add_row({"stddev (s)", util::format_double(stats.stddev(), 3),
                 "0.12"});
  table.add_row({"min (s)", util::format_double(stats.min(), 3), "-"});
  table.add_row({"p50 (s)", util::format_double(cdf.median(), 3), "-"});
  table.add_row({"max (s)", util::format_double(stats.max(), 3), "-"});
  table.add_row({"trials", std::to_string(stats.count()), "40"});
  table.print(std::cout);

  util::CsvWriter csv{"latency_mirroring.csv"};
  csv.write_row({"trial", "latency_s"});
  const auto& samples = cdf.samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    csv.write_row({std::to_string(i), util::format_double(samples[i], 4)});
  }

  // §4.2: the latency "depends on many factors like network latency
  // (between browser and test device)". Sweep the viewer's distance.
  std::cout << "\nlatency vs viewer distance (15 trials each):\n";
  util::TextTable sweep{{"viewer RTT", "mean (s)", "stddev (s)"}};
  for (const int rtt_ms : {1, 20, 80, 200}) {
    bench::Testbed remote_tb{20191113 + static_cast<std::uint64_t>(rtt_ms)};
    remote_tb.start_video();
    remote_tb.net.add_link(
        "viewer", remote_tb.vp->controller_host(),
        net::LinkSpec::symmetric(util::Duration::micros(rtt_ms * 500), 50.0));
    if (!remote_tb.api->device_mirroring("J7DUO-1").ok()) return 1;
    auto* remote_session = remote_tb.vp->mirroring("J7DUO-1");
    (void)remote_session->attach_viewer({"viewer", 7100});
    util::RunningStats remote_stats;
    for (int trial = 0; trial < 15; ++trial) {
      auto latency =
          remote_session->measure_latency_sync({"viewer", 7100}, 540, 900);
      if (latency.ok()) remote_stats.add(latency.value().to_seconds());
      remote_tb.sim.run_for(util::Duration::seconds(2));
    }
    sweep.add_row({std::to_string(rtt_ms) + " ms",
                   util::format_double(remote_stats.mean(), 3),
                   util::format_double(remote_stats.stddev(), 3)});
  }
  sweep.print(std::cout);
  std::cout << "-> processing dominates: even a transatlantic viewer only "
               "adds its RTTs (input leg + frame leg) to the 1.4 s floor.\n"
            << "\nCSV: latency_mirroring.csv\n";
  return 0;
}
