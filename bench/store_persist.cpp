// Persistent capture store bench: WAL append throughput, cold-query
// throughput after a restart, and crash-recovery speed (open() over a
// populated directory).
//
// Emits one JSON object on stdout so CI can diff the numbers; exits
// non-zero if correctness floors are missed (recovery must index every
// record, cold queries must be lossless).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <vector>

#include <unistd.h>

#include "hw/power_monitor.hpp"
#include "store/capture_store.hpp"
#include "store/persist/engine.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

constexpr std::size_t kSamples = 60000;  // 12 s at the Monsoon's 5 kHz
constexpr std::size_t kCaptures = 16;
constexpr int kRounds = 5;

hw::Capture synth_capture(std::uint64_t seed) {
  util::Rng rng{20191113 + seed};
  std::vector<float> samples;
  samples.reserve(kSamples);
  double v = 350.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    v = std::clamp(v + rng.uniform(-8.0, 8.0), 5.0, 4500.0);
    samples.push_back(static_cast<float>(v));
  }
  return hw::Capture{util::TimePoint::epoch(), 5000.0, 3.85,
                     std::move(samples)};
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void emit(std::ostream& os, const char* key, double value, bool last = false) {
  os << "  \"" << key << "\": " << util::format_double(value, 3)
     << (last ? "\n" : ",\n");
}

}  // namespace

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("blab-bench-persist-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  std::vector<hw::Capture> captures;
  for (std::size_t i = 0; i < kCaptures; ++i) {
    captures.push_back(synth_capture(i));
  }
  const auto total_samples = static_cast<double>(kSamples * kCaptures);

  // -- archive-through append (WAL journal + fflush per capture) ----------
  // One cold run populates the directory used by the recovery and cold-query
  // sections below; the rate is best-of-kRounds over fresh directories.
  double append_s = 1e9;
  for (int r = 0; r < kRounds; ++r) {
    const std::string round_dir = dir + "-round" + std::to_string(r);
    std::filesystem::remove_all(round_dir);
    store::persist::PersistEngine engine{round_dir};
    if (auto st = engine.open(); !st.ok()) {
      throw std::runtime_error{"open failed: " + st.str()};
    }
    store::CaptureStore st;
    st.attach_persistence(&engine);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kCaptures; ++i) {
      st.append("vp-" + std::to_string(i % 4), "bench", captures[i],
                util::TimePoint::epoch() + util::Duration::seconds(
                                               static_cast<std::int64_t>(i)));
    }
    append_s = std::min(append_s, seconds_since(t0));
    if (r == 0) {
      // Half the records fold into segments, half stay in the WAL, so
      // recovery exercises both paths.
      if (auto ck = engine.checkpoint(); !ck.ok()) {
        throw std::runtime_error{"checkpoint failed: " + ck.str()};
      }
      for (std::size_t i = 0; i < kCaptures; ++i) {
        st.append("vp-" + std::to_string(i % 4), "bench-wal", captures[i],
                  util::TimePoint::epoch() +
                      util::Duration::seconds(
                          static_cast<std::int64_t>(kCaptures + i)));
      }
      std::filesystem::remove_all(dir);
      std::filesystem::rename(round_dir, dir);
    } else {
      std::filesystem::remove_all(round_dir);
    }
  }

  // -- crash recovery: open() over segments + WAL replay ------------------
  double recovery_s = 1e9;
  std::uint64_t recovered = 0;
  for (int r = 0; r < kRounds; ++r) {
    store::persist::PersistEngine engine{dir};
    const auto t0 = std::chrono::steady_clock::now();
    if (auto st = engine.open(); !st.ok()) {
      throw std::runtime_error{"recovery open failed: " + st.str()};
    }
    recovery_s = std::min(recovery_s, seconds_since(t0));
    recovered = engine.stats().recovered_records;
  }
  if (recovered != 2 * kCaptures) {
    std::cerr << "FAIL: recovery indexed " << recovered << " of "
              << 2 * kCaptures << " records\n";
    return 1;
  }

  // -- cold queries after restart (disk load + chunk decode) --------------
  store::persist::PersistEngine cold_engine{dir};
  if (auto st = cold_engine.open(); !st.ok()) {
    throw std::runtime_error{"cold open failed: " + st.str()};
  }
  const std::uint64_t disk_bytes = cold_engine.disk_usage_bytes();
  double cold_s = 1e9;
  std::size_t cold_samples = 0;
  for (int r = 0; r < kRounds; ++r) {
    store::CaptureStore st;
    st.attach_persistence(&cold_engine);
    cold_samples = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& ws : st.workspaces()) {
      for (const auto& id : st.list(ws)) {
        auto slice = st.range(id, util::TimePoint::epoch(),
                              util::TimePoint::max());
        if (!slice.ok()) {
          std::cerr << "FAIL: cold range(" << id.str()
                    << "): " << slice.error().str() << "\n";
          return 1;
        }
        cold_samples += slice.value().sample_count();
      }
    }
    cold_s = std::min(cold_s, seconds_since(t0));
  }
  if (cold_samples != 2 * kSamples * kCaptures) {
    std::cerr << "FAIL: cold queries returned " << cold_samples << " of "
              << 2 * kSamples * kCaptures << " samples\n";
    return 1;
  }

  std::cout << "{\n";
  emit(std::cout, "samples_per_capture", static_cast<double>(kSamples));
  emit(std::cout, "captures", static_cast<double>(kCaptures));
  emit(std::cout, "persist_append_samples_per_s", total_samples / append_s);
  emit(std::cout, "persist_recovery_records_per_s",
       static_cast<double>(recovered) / recovery_s);
  emit(std::cout, "persist_cold_query_samples_per_s",
       static_cast<double>(cold_samples) / cold_s);
  emit(std::cout, "recovered_records", static_cast<double>(recovered));
  emit(std::cout, "disk_bytes", static_cast<double>(disk_bytes));
  emit(std::cout, "disk_bytes_per_sample",
       static_cast<double>(disk_bytes) / (2.0 * total_samples),
       /*last=*/true);
  std::cout << "}\n";

  std::filesystem::remove_all(dir);
  return 0;
}
