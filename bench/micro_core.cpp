// Microbenchmarks (google-benchmark) for the hot paths underneath the
// reproduction: simulator event dispatch, Monsoon sample synthesis, the
// encoder model, bulk flows, CDF quantiles, and network routing.
#include <benchmark/benchmark.h>

#include "automation/browser_workload.hpp"
#include "bench/common.hpp"
#include "hw/power_monitor.hpp"
#include "mirror/encoder.hpp"
#include "net/flow.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace blab;

namespace {

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule_after(util::Duration::micros(i), [] {});
    }
    benchmark::DoNotOptimize(sim.run_all());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventDispatch)->Arg(1000)->Arg(10000);

void BM_MonsoonCaptureSynthesis(benchmark::State& state) {
  // Synthesize `range(0)` seconds of 5 kHz samples from a busy timeline.
  class BusyLoad : public hw::Load {
   public:
    double current_ma(util::TimePoint t) const override {
      return 150.0 + static_cast<double>(t.us() % 7) * 10.0;
    }
    std::vector<std::pair<util::TimePoint, double>> current_segments(
        util::TimePoint t0, util::TimePoint t1) const override {
      // A breakpoint every 150 ms, like the device jitter task produces.
      std::vector<std::pair<util::TimePoint, double>> out;
      for (util::TimePoint t = t0; t < t1;
           t += util::Duration::millis(150)) {
        out.emplace_back(t, current_ma(t));
      }
      return out;
    }
  } load;
  for (auto _ : state) {
    sim::Simulator sim;
    hw::PowerMonitor monitor{sim, util::Rng{1}};
    monitor.set_mains(true);
    (void)monitor.set_voltage(3.85);
    monitor.connect_load(&load);
    (void)monitor.start_capture();
    sim.run_for(util::Duration::seconds(static_cast<double>(state.range(0))));
    auto capture = monitor.stop_capture();
    benchmark::DoNotOptimize(capture.value().mean_current_ma());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5000);
}
BENCHMARK(BM_MonsoonCaptureSynthesis)->Arg(10)->Arg(60);

void BM_EncoderModel(benchmark::State& state) {
  mirror::EncoderConfig cfg;
  double acc = 0.0;
  double c = 0.0;
  for (auto _ : state) {
    acc += mirror::H264Encoder::output_mbps(cfg, c);
    acc += mirror::H264Encoder::device_cpu_demand(c);
    c += 0.001;
    if (c > 1.0) c = 0.0;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_EncoderModel);

void BM_BulkFlowTransfer(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net{sim, 7};
    net.add_link("a", "b",
                 net::LinkSpec::symmetric(util::Duration::millis(5), 50.0));
    bool done = false;
    net::Flow flow{net, "a", "b",
                   static_cast<std::size_t>(state.range(0)) * 1024 * 1024,
                   {},
                   [&](const net::FlowResult&) { done = true; }};
    flow.start();
    sim.run_all();
    benchmark::DoNotOptimize(done);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 1024 * 1024);
}
BENCHMARK(BM_BulkFlowTransfer)->Arg(1)->Arg(8);

void BM_CdfQuantiles(benchmark::State& state) {
  util::Rng rng{5};
  util::Cdf cdf;
  for (int i = 0; i < state.range(0); ++i) cdf.add(rng.normal(100.0, 15.0));
  for (auto _ : state) {
    double acc = 0.0;
    for (double q = 0.0; q <= 1.0; q += 0.01) acc += cdf.quantile(q);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CdfQuantiles)->Arg(10000)->Arg(1000000);

void BM_NetworkRouting(benchmark::State& state) {
  sim::Simulator sim;
  net::Network net{sim, 3};
  // A chain of hosts with some cross links.
  const int n = 32;
  for (int i = 0; i + 1 < n; ++i) {
    net.add_link("h" + std::to_string(i), "h" + std::to_string(i + 1),
                 net::LinkSpec::symmetric(util::Duration::millis(1), 100.0));
  }
  for (int i = 0; i + 8 < n; i += 8) {
    net.add_link("h" + std::to_string(i), "h" + std::to_string(i + 8),
                 net::LinkSpec::symmetric(util::Duration::millis(1), 100.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.path("h0", "h31"));
  }
}
BENCHMARK(BM_NetworkRouting);

void BM_FullBrowserWorkload(benchmark::State& state) {
  // Wall-clock cost of simulating one full 10-page measured workload.
  for (auto _ : state) {
    bench::Testbed tb{static_cast<std::uint64_t>(state.iterations()) + 7};
    tb.arm_monitor();
    automation::BrowserWorkloadOptions options;
    options.pages = 4;
    options.scrolls_per_page = 3;
    auto run = automation::run_browser_energy_test(
        *tb.api, "J7DUO-1", device::BrowserProfile::chrome(), options);
    benchmark::DoNotOptimize(run.ok());
  }
}
BENCHMARK(BM_FullBrowserWorkload)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
