// Device diversity (§1, §5): "BatteryLab will naturally grow richer of new
// and old devices" and "there is no fundamental constraint which would not
// allow BatteryLab to support laptops or IoT devices."
//
// One vantage point measures four device classes through the same relay +
// Monsoon path: an Android phone, an iPhone, a laptop and an IoT sensor.
// The table shows the instrument range each one exercises — pack voltage,
// draw, power, and the relative noise floor (where the Monsoon's ±0.9 mA
// front end starts to matter).
#include <iostream>

#include "analysis/report.hpp"
#include "bench/common.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

struct Row {
  std::string serial;
  std::string klass;
  double voltage;
};

}  // namespace

int main() {
  std::cout << "BatteryLab reproduction — device diversity (§1/§5)\n"
            << "(four device classes through one relay + Monsoon path)\n\n";

  sim::Simulator sim;
  net::Network net{sim, 20191113};
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));
  api::VantagePoint vp{sim, net};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));

  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  if (!vp.add_device(phone).ok()) return 1;
  if (!vp.add_device(device::DeviceSpec::iphone("IPHONE8-1")).ok()) return 1;
  if (!vp.add_device(device::DeviceSpec::laptop("LAPTOP-1")).ok()) return 1;
  if (!vp.add_device(device::DeviceSpec::iot_sensor("SENSOR-1")).ok()) {
    return 1;
  }
  api::BatteryLabApi api{vp};
  if (auto st = api.power_monitor(); !st.ok()) return 1;

  const Row rows[] = {
      {"J7DUO-1", "phone (Android 8.0)", 3.85},
      {"IPHONE8-1", "phone (iOS 12)", 3.80},
      {"LAPTOP-1", "laptop (3S pack)", 11.40},
      {"SENSOR-1", "IoT sensor (MCU)", 3.30},
  };
  analysis::TableReport table{
      "Idle measurements across device classes",
      {"device", "class", "V", "mean (mA)", "mean (mW)", "p10-p90 noise (%)"}};
  for (const Row& row : rows) {
    if (auto st = api.set_voltage(row.voltage); !st.ok()) {
      std::cerr << st.error().str() << "\n";
      return 1;
    }
    auto capture = api.run_monitor(row.serial, util::Duration::seconds(30));
    if (!capture.ok()) {
      std::cerr << row.serial << ": " << capture.error().str() << "\n";
      return 1;
    }
    const auto cdf = capture.value().current_cdf(5);
    const double spread_pct =
        (cdf.quantile(0.9) - cdf.quantile(0.1)) / cdf.mean() * 100.0;
    table.add_row({row.serial, row.klass, util::format_double(row.voltage, 2),
                   util::format_double(cdf.mean(), 1),
                   util::format_double(cdf.mean() * row.voltage, 0),
                   util::format_double(spread_pct, 1)});
  }
  table.print(std::cout);
  table.write_csv("device_diversity.csv");
  std::cout << "\n-> one instrument spans three orders of magnitude of draw;"
               " only the MCU-class node approaches the noise floor.\n"
            << "CSV: device_diversity.csv\n";
  return 0;
}
