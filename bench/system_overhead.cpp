// §4.2 system-performance numbers — controller overhead of mirroring.
//
// Paper: mirroring costs an extra ~50% controller CPU on average and ~6%
// memory; total memory stays under 20% of the Pi's 1 GB; the ~7-minute
// mirrored test uploads ~32 MB toward the viewer (upper bound ~50 MB at the
// 1 Mbps scrcpy rate; noVNC compression explains the gap).
#include <iostream>

#include "bench/common.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace blab;

namespace {

constexpr auto kTestDuration = util::Duration::minutes(7);

struct SystemStats {
  double cpu_mean = 0.0;
  double ram_mb = 0.0;
  double ram_fraction = 0.0;
  double upload_mb = 0.0;
};

SystemStats run(bool mirroring) {
  bench::Testbed tb{20191113};
  tb.start_video();
  tb.net.add_link("viewer", tb.vp->controller_host(),
                  net::LinkSpec::symmetric(util::Duration::micros(500),
                                           100.0));
  tb.net.listen({"viewer", 7200}, [](const net::Message&) {});
  if (mirroring) {
    (void)tb.api->device_mirroring("J7DUO-1");
    (void)tb.vp->mirroring("J7DUO-1")->attach_viewer({"viewer", 7200});
  }
  tb.arm_monitor();
  auto& res = tb.vp->controller().resources();
  res.start_sampling(util::Duration::millis(200));
  tb.net.reset_stats();
  const auto t0 = tb.sim.now();
  auto capture = tb.api->run_monitor("J7DUO-1", kTestDuration);
  if (!capture.ok()) throw std::runtime_error{capture.error().str()};
  res.stop_sampling();

  SystemStats out;
  util::RunningStats cpu;
  for (util::TimePoint t = t0; t < tb.sim.now();
       t += util::Duration::millis(200)) {
    cpu.add(res.cpu_timeline().at(t));
  }
  out.cpu_mean = cpu.mean() * 100.0;
  out.ram_mb = res.ram_used_mb();
  out.ram_fraction = res.ram_fraction() * 100.0;
  out.upload_mb = static_cast<double>(tb.net.stats("viewer").bytes_rx) / 1e6;
  if (mirroring) (void)tb.api->device_mirroring("J7DUO-1", false);
  return out;
}

}  // namespace

int main() {
  std::cout << "BatteryLab reproduction — §4.2 system performance\n"
            << "(7-minute mirrored video test on the Pi 3B+)\n\n";

  const SystemStats off = run(false);
  const SystemStats on = run(true);

  util::TextTable table{{"metric", "no mirroring", "mirroring", "paper"}};
  table.add_row({"controller CPU mean (%)",
                 util::format_double(off.cpu_mean, 1),
                 util::format_double(on.cpu_mean, 1),
                 "~25 -> ~75 (+50)"});
  table.add_row({"controller RAM (MB)", util::format_double(off.ram_mb, 0),
                 util::format_double(on.ram_mb, 0), "+~6% of 1 GB"});
  table.add_row({"controller RAM (% of 1 GB)",
                 util::format_double(off.ram_fraction, 1),
                 util::format_double(on.ram_fraction, 1), "< 20"});
  table.add_row({"upload to viewer (MB / 7 min)",
                 util::format_double(off.upload_mb, 1),
                 util::format_double(on.upload_mb, 1),
                 "~32 (<= 50 upper bound)"});
  table.print(std::cout);

  util::CsvWriter csv{"system_overhead.csv"};
  csv.write_row({"metric", "no_mirroring", "mirroring"});
  csv.write_row({"cpu_mean_pct", util::format_double(off.cpu_mean, 2),
                 util::format_double(on.cpu_mean, 2)});
  csv.write_row({"ram_mb", util::format_double(off.ram_mb, 1),
                 util::format_double(on.ram_mb, 1)});
  csv.write_row({"upload_mb", util::format_double(off.upload_mb, 2),
                 util::format_double(on.upload_mb, 2)});
  std::cout << "\nCSV: system_overhead.csv\n";
  return 0;
}
