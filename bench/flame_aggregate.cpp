// Trace-analytics bench: folds a DST corpus's span forest through
// obs/aggregate (merged flame tree + per-job critical paths) and reports
// span-fold throughput. The corpus run itself is untimed setup — the timed
// region is exactly what GET /flame does per request, so the pinned
// flame_spans_per_s metric gates the analytics path's performance.
//
// Usage: flame_aggregate [--seeds=N] [--rounds=N] [--iters=N] [--out=P]
//   --seeds=N   corpus size used to grow the span forests (default 40)
//   --rounds=N  repetitions; the best round is reported (default 5)
//   --iters=N   aggregation passes per round (default 50)
//   --out=P     also write the JSON result object to P (the BENCH_flame.json
//               artifact ci_bench.sh archives)
//
// Emits one JSON object on stdout so ci_bench.sh can fold the numbers into
// BENCH_core.json; exits non-zero if the corpus trips an oracle or yields an
// empty span forest (a perf number from a broken run would be meaningless).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/aggregate.hpp"
#include "testing/harness.hpp"
#include "testing/scenario.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void emit(std::ostream& os, const char* key, double value, bool last = false) {
  os << "  \"" << key << "\": " << util::format_double(value, 3)
     << (last ? "\n" : ",\n");
}

unsigned long flag_value(std::string_view arg, std::string_view name) {
  return std::strtoul(arg.substr(name.size()).data(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_seeds = 40;
  int rounds = 5;
  int iters = 50;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      n_seeds = flag_value(arg, "--seeds=");
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = static_cast<int>(flag_value(arg, "--rounds="));
    } else if (arg.rfind("--iters=", 0) == 0) {
      iters = static_cast<int>(flag_value(arg, "--iters="));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(sizeof("--out=") - 1);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  util::Logger::global().set_level(util::LogLevel::kOff);

  // Untimed setup: one corpus run. Each seed's span buffer stays its own
  // forest — span ids are only unique within one tracer, exactly like the
  // per-backend buffer GET /flame serves — so the timed region folds one
  // forest per seed per iteration.
  const auto seeds = testing::default_corpus(n_seeds);
  const auto results = testing::run_corpus(seeds, /*jobs=*/0);
  std::size_t violations = 0;
  std::size_t total_spans = 0;
  std::vector<std::vector<obs::SpanRecord>> forests;
  forests.reserve(results.size());
  for (const auto& result : results) {
    violations += result.violations.size();
    total_spans += result.spans.size();
    forests.push_back(result.spans);
  }
  if (violations != 0) {
    std::cerr << "FAIL: " << violations << " oracle violation(s) during the "
              << "bench corpus; perf numbers from a broken run are invalid\n";
    return 1;
  }
  if (total_spans == 0) {
    std::cerr << "FAIL: bench corpus produced no spans\n";
    return 1;
  }

  double best_s = 1e300;
  std::uint64_t sink = 0;  // folded results feed this so the loop can't DCE
  std::size_t paths = 0;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) {
      std::size_t path_count = 0;
      for (const auto& forest : forests) {
        const obs::FlameNode flame = obs::build_flame(forest);
        const auto cps = obs::critical_paths(forest);
        sink += flame.count + cps.size();
        path_count += cps.size();
      }
      paths = path_count;
    }
    const double wall = seconds_since(t0);
    if (wall < best_s) best_s = wall;
  }

  const double folded =
      static_cast<double>(total_spans) * static_cast<double>(iters);
  std::ostringstream doc;
  doc << "{\n";
  emit(doc, "seeds", static_cast<double>(seeds.size()));
  emit(doc, "spans", static_cast<double>(total_spans));
  emit(doc, "critical_paths", static_cast<double>(paths));
  emit(doc, "iters", static_cast<double>(iters));
  emit(doc, "rounds", static_cast<double>(rounds));
  emit(doc, "best_wall_s", best_s);
  emit(doc, "flame_builds_per_s", static_cast<double>(iters) / best_s);
  emit(doc, "flame_spans_per_s", folded / best_s, /*last=*/true);
  doc << "}\n";
  std::cout << doc.str();
  if (!out_path.empty()) {
    std::ofstream out{out_path};
    if (!out) {
      std::cerr << "cannot write artifact: " << out_path << "\n";
      return 2;
    }
    out << doc.str();
  }
  return sink == 0 ? 1 : 0;
}
