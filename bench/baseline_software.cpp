// Baseline comparison: hardware-based vs software-based battery measurement.
//
// §1 motivates BatteryLab by contrasting power-meter measurements with the
// software-based inference sold by GreenSpector / Mobile Enerlytics, which
// works only "for few devices for which a calibration was possible". Here
// the software estimator is calibrated on ONE workload (video playback) and
// then asked to estimate others; the table shows where counter-based
// inference tracks the hardware and where it drifts.
#include <iostream>
#include <memory>

#include "analysis/report.hpp"
#include "analysis/software_estimator.hpp"
#include "automation/browser_workload.hpp"
#include "bench/common.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

analysis::ResourceTrace trace_of(device::AndroidDevice& dev,
                                 util::TimePoint t0, util::TimePoint t1) {
  return analysis::ResourceTrace::sample(
      dev.cpu().utilization_timeline(), dev.screen_on_timeline(),
      dev.radio_active_timeline(), t0, t1, util::Duration::millis(500));
}

}  // namespace

int main() {
  std::cout << "BatteryLab reproduction — hardware vs software-based "
               "measurement baseline (§1)\n\n";

  analysis::SoftwareEstimator estimator;

  // ---- Calibration: a multi-phase instrumented workload ------------------
  // Real calibration suites cycle device states (idle screen, video, screen
  // off) so every counter actually varies.
  {
    bench::Testbed tb{20191113};
    auto& player = tb.start_video();
    tb.arm_monitor();
    if (auto st = tb.api->start_monitor("J7DUO-1"); !st.ok()) {
      std::cerr << st.error().str() << "\n";
      return 1;
    }
    const auto t0 = tb.sim.now();
    tb.sim.run_for(util::Duration::seconds(40));  // video
    (void)player.pause();
    tb.sim.run_for(util::Duration::seconds(30));  // idle, screen on
    tb.device->screen().set_on(false);
    tb.device->recompute_power();
    tb.sim.run_for(util::Duration::seconds(20));  // screen off
    tb.device->screen().set_on(true);
    tb.device->wifi().begin_activity(8.0);        // synthetic download
    tb.device->recompute_power();
    tb.sim.run_for(util::Duration::seconds(30));
    tb.device->wifi().end_activity(8.0);
    tb.device->recompute_power();
    tb.sim.run_for(util::Duration::seconds(10));
    auto capture = tb.api->stop_monitor();
    const auto trace = trace_of(*tb.device, t0, t0 + capture.value().duration());
    if (auto st = estimator.calibrate(capture.value(), trace); !st.ok()) {
      std::cerr << "calibration failed: " << st.error().str() << "\n";
      return 1;
    }
    std::cout << "calibrated on a 130 s state-cycling workload; training RMSE "
              << util::format_double(estimator.model().training_rmse_ma, 1)
              << " mA\nmodel: "
              << util::format_double(estimator.model().beta[0], 1)
              << " + " << util::format_double(estimator.model().beta[1], 1)
              << "*cpu + " << util::format_double(estimator.model().beta[2], 1)
              << "*screen + "
              << util::format_double(estimator.model().beta[3], 1)
              << "*radio  [mA]\n\n";
  }

  // ---- Evaluation: browser workloads the model never saw ----------------
  analysis::TableReport table{
      "Hardware vs software estimates (unseen workloads)",
      {"workload", "hardware (mA)", "software (mA)", "error (%)"}};
  for (const char* browser : {"Brave", "Chrome", "Firefox"}) {
    bench::Testbed tb{20191113};
    tb.arm_monitor();
    automation::BrowserWorkloadOptions options;
    options.pages = 4;
    options.scrolls_per_page = 3;
    const auto t0 = tb.sim.now();
    auto run = automation::run_browser_energy_test(
        *tb.api, "J7DUO-1", *device::BrowserProfile::find(browser), options);
    if (!run.ok()) {
      std::cerr << run.error().str() << "\n";
      return 1;
    }
    // The software agent samples counters over the same window the
    // measurement covered (skip the post-capture teardown).
    const auto trace = trace_of(
        *tb.device, t0 + util::Duration::seconds(1),
        t0 + run.value().capture.duration());
    auto est = estimator.estimate(trace);
    const double err =
        analysis::SoftwareEstimator::relative_error(est.value(),
                                                    run.value().capture);
    table.add_row({browser,
                   util::format_double(run.value().mean_current_ma, 1),
                   util::format_double(est.value().mean_current_ma, 1),
                   util::format_double(err * 100.0, 1)});
  }
  // Mirroring changes the power mix (hardware encoder) in ways the counter
  // model was never calibrated for.
  {
    bench::Testbed tb{20191113};
    tb.arm_monitor();
    automation::BrowserWorkloadOptions options;
    options.pages = 4;
    options.scrolls_per_page = 3;
    options.mirroring = true;
    const auto t0 = tb.sim.now();
    auto run = automation::run_browser_energy_test(
        *tb.api, "J7DUO-1", device::BrowserProfile::chrome(), options);
    const auto trace = trace_of(*tb.device, t0 + util::Duration::seconds(1),
                                t0 + run.value().capture.duration());
    auto est = estimator.estimate(trace);
    const double err = analysis::SoftwareEstimator::relative_error(
        est.value(), run.value().capture);
    table.add_row({"Chrome + mirroring",
                   util::format_double(run.value().mean_current_ma, 1),
                   util::format_double(est.value().mean_current_ma, 1),
                   util::format_double(err * 100.0, 1)});
  }
  table.print(std::cout);
  std::cout << "\n-> counter-based inference is usable only near its "
               "calibration point; hardware measurement is workload-"
               "independent — the premise of §1.\n";
  return 0;
}
