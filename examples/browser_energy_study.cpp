// The §4.2 demonstration, end to end: "which of today's Android browsers is
// the most energy efficient?"
//
// An experimenter writes an automation script, deploys it through the
// Jenkins-style access server, an admin approves the pipeline, and the
// scheduler runs one job per browser per mirroring mode on the vantage
// point's device. Results come back through each job's workspace.
//
//   ./build/examples/browser_energy_study
#include <iostream>
#include <map>
#include <memory>

#include "automation/browser_workload.hpp"
#include "util/logging.hpp"
#include "device/android.hpp"
#include "server/access_server.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace blab;

int main() {
  util::Logger::global().set_level(util::LogLevel::kWarn);
  sim::Simulator sim;
  net::Network net{sim, 20191113};

  // Internet + web content.
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));

  // Vantage point at Imperial College London, one Samsung J7 Duo.
  api::VantagePoint vp{sim, net};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  if (auto r = vp.add_device(phone); !r.ok()) {
    std::cerr << r.error().str() << "\n";
    return 1;
  }

  // Access server in the cloud; onboarding per the §3.4 tutorial.
  server::AccessServer server{sim, net};
  if (auto st = server.onboard_vantage_point("node1", vp); !st.ok()) {
    std::cerr << st.error().str() << "\n";
    return 1;
  }
  const auto admin = server.users().register_user("ops", server::Role::kAdmin);
  const auto alice =
      server.users().register_user("alice", server::Role::kExperimenter);

  // One job per (browser, mirroring) cell; results keyed by job name.
  std::map<std::string, double> discharge;
  std::vector<server::JobId> ids;
  for (const char* browser : {"Brave", "Chrome", "Edge", "Firefox"}) {
    for (bool mirroring : {false, true}) {
      server::Job job;
      job.name = std::string{browser} + (mirroring ? "+mirroring" : "");
      job.constraints.device_serial = "J7DUO-1";
      job.constraints.connectivity = server::Connectivity::kWifi;
      const std::string key = job.name;
      job.script = [key, browser, mirroring,
                    &discharge](server::JobContext& ctx) -> util::Status {
        automation::BrowserWorkloadOptions options;
        options.mirroring = mirroring;
        auto run = automation::run_browser_energy_test(
            *ctx.api, ctx.device_serial,
            *device::BrowserProfile::find(browser), options);
        if (!run.ok()) return run.error();
        discharge[key] = run.value().discharge_mah;
        ctx.workspace->store_artifact(
            "discharge_mah", util::format_double(run.value().discharge_mah, 3));
        ctx.workspace->log("pages=" + std::to_string(run.value().pages_loaded));
        return util::Status::ok_status();
      };
      auto id = server.submit_job(alice.value(), std::move(job));
      if (!id.ok()) {
        std::cerr << id.error().str() << "\n";
        return 1;
      }
      (void)server.approve_pipeline(admin.value(), id.value());
      ids.push_back(id.value());
    }
  }

  auto ran = server.run_queue(alice.value());
  if (!ran.ok() || ran.value() != ids.size()) {
    std::cerr << "dispatch incomplete\n";
    return 1;
  }

  util::TextTable table{{"browser", "discharge (mAh)", "with mirroring",
                         "mirroring cost"}};
  for (const char* browser : {"Brave", "Chrome", "Edge", "Firefox"}) {
    const double plain = discharge[browser];
    const double mirrored = discharge[std::string{browser} + "+mirroring"];
    table.add_row({browser, util::format_double(plain, 2),
                   util::format_double(mirrored, 2),
                   "+" + util::format_double(mirrored - plain, 2)});
  }
  std::cout << "Which Android browser is the most energy efficient?\n\n";
  table.print(std::cout);
  std::cout << "\nretrieving a job workspace, like the Jenkins UI would:\n";
  const server::Job* first = server.scheduler().find(ids.front());
  for (const auto& line : first->workspace.logs()) {
    std::cout << "  [" << first->name << "] " << line << "\n";
  }
  return 0;
}
