// Quickstart: bring up one vantage point, run a 60-second battery
// measurement of local video playback, then a short browser workload —
// the BatteryLab "hello world".
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "api/batterylab_api.hpp"
#include "automation/browser_workload.hpp"
#include "device/android.hpp"
#include "device/video_player.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"

using namespace blab;

int main() {
  // One simulator and network carry the whole deployment.
  sim::Simulator sim;
  net::Network network{sim};

  // Web infrastructure: the sites the browser workload fetches from.
  network.add_host("internet");
  network.add_link("web", "internet",
                   net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));

  // A vantage point like the paper's first deployment at Imperial College.
  api::VantagePointConfig config;
  config.name = "node1";
  api::VantagePoint vp{sim, network, config};
  // The controller's uplink to the wider internet.
  network.add_link(vp.controller_host(), "internet",
                   net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));

  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  auto dev = vp.add_device(phone);
  if (!dev.ok()) {
    std::cerr << "add_device failed: " << dev.error().str() << "\n";
    return 1;
  }

  api::BatteryLabApi api{vp};
  std::cout << "devices: " << util::join(api.list_devices(), ", ") << "\n";

  // --- Measurement 1: local video playback (the Fig. 2 workload) ---------
  auto& os = dev.value()->os();
  (void)os.install(std::make_unique<device::VideoPlayerApp>(*dev.value()));
  (void)os.start_activity("com.example.videoplayer");
  auto* player = static_cast<device::VideoPlayerApp*>(
      os.app("com.example.videoplayer"));
  (void)player->play("/sdcard/video.mp4");

  if (auto st = api.power_monitor(); !st.ok()) {
    std::cerr << st.str() << "\n";
    return 1;
  }
  (void)api.set_voltage(3.85);
  auto capture = api.run_monitor("J7DUO-1", util::Duration::seconds(60));
  if (!capture.ok()) {
    std::cerr << "measurement failed: " << capture.error().str() << "\n";
    return 1;
  }
  (void)player->pause();
  std::cout << "video playback: " << capture.value().sample_count()
            << " samples @5kHz, median "
            << util::format_double(capture.value().current_cdf(10).median(), 1)
            << " mA, mean "
            << util::format_double(capture.value().mean_current_ma(), 1)
            << " mA, " << util::format_double(capture.value().charge_mah(), 2)
            << " mAh\n";

  // --- Measurement 2: a short Brave browsing workload --------------------
  automation::BrowserWorkloadOptions options;
  options.pages = 3;
  options.scrolls_per_page = 4;
  auto run = automation::run_browser_energy_test(
      api, "J7DUO-1", device::BrowserProfile::brave(), options);
  if (!run.ok()) {
    std::cerr << "browser run failed: " << run.error().str() << "\n";
    return 1;
  }
  std::cout << "brave browsing: mean "
            << util::format_double(run.value().mean_current_ma, 1)
            << " mA, device CPU median "
            << util::format_double(run.value().device_cpu.median() * 100.0, 1)
            << "%, " << util::format_bytes(
                   static_cast<double>(run.value().bytes_fetched))
            << " fetched over "
            << util::to_string(run.value().elapsed) << "\n";
  return 0;
}
