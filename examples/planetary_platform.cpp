// The PlanetLab-style vision (§1, §5): members around the world contribute
// vantage points in exchange for access; experimenters spend credits on
// device time; recruited testers drive usability sessions.
//
// Three institutions join with different hardware (Android phone, iPhone,
// laptop + IoT sensor); credit enforcement is on; a measurement campaign
// fans out across the fleet and a crowdsourced tester task closes the loop.
//
//   ./build/examples/planetary_platform
#include <iostream>
#include <memory>

#include "automation/browser_workload.hpp"
#include "server/access_server.hpp"
#include "server/maintenance.hpp"
#include "server/testers.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace blab;

int main() {
  util::Logger::global().set_level(util::LogLevel::kWarn);
  sim::Simulator sim;
  net::Network net{sim, 20191113};
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));

  server::AccessServer server{sim, net};
  server.enable_credit_enforcement();

  // ---- Three member institutions contribute hardware --------------------
  struct Site {
    const char* label;
    const char* owner;
    int wan_ms;
  };
  const Site sites[] = {
      {"london", "imperial", 6},
      {"princeton", "princeton-cs", 40},
      {"tokyo", "keio-lab", 120},
  };
  std::vector<std::unique_ptr<api::VantagePoint>> nodes;
  for (const auto& site : sites) {
    (void)server.users().register_user(site.owner,
                                       server::Role::kExperimenter);
    api::VantagePointConfig config;
    config.name = site.label;
    config.seed = util::fnv1a(site.label);
    auto vp = std::make_unique<api::VantagePoint>(sim, net, config);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(
                     util::Duration::millis(site.wan_ms), 150.0));
    nodes.push_back(std::move(vp));
  }
  // Different hardware at each site — "heterogeneous devices and testing
  // conditions" (§1).
  device::DeviceSpec j7;
  j7.serial = "J7DUO-1";
  (void)nodes[0]->add_device(j7);
  (void)nodes[0]->add_device(device::DeviceSpec::iphone("IPHONE8-1"));
  device::DeviceSpec pixel;
  pixel.serial = "PIXEL3A-1";
  pixel.model = "Pixel 3a";
  (void)nodes[1]->add_device(pixel);
  (void)nodes[2]->add_device(device::DeviceSpec::laptop("LAPTOP-1"));
  (void)nodes[2]->add_device(device::DeviceSpec::iot_sensor("SENSOR-1"));

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (auto st = server.onboard_vantage_point(sites[i].label, *nodes[i],
                                               sites[i].owner);
        !st.ok()) {
      std::cerr << st.error().str() << "\n";
      return 1;
    }
  }
  std::cout << "fleet: ";
  for (const auto& label : server.registry().approved_labels()) {
    std::cout << label << "." << server.dns().zone() << " ";
  }
  std::cout << "\nhosting bonuses: ";
  for (const auto& site : sites) {
    std::cout << site.owner << "="
              << util::format_double(
                     server.credits().balance(site.owner).value(), 0)
              << " ";
  }
  std::cout << "\n\n";

  // Standing fleet hygiene (§3.1) runs on a cron: monitor safety plus
  // capture-store retention (raw samples age out first, summaries later).
  server.schedule_recurring(
      [] { return server::make_monitor_safety_job(); },
      util::Duration::minutes(30));
  server.schedule_recurring(
      [&server] { return server::make_capture_retention_job(server); },
      server.capture_store().policy().raw_ttl);

  // ---- A measurement campaign across the fleet --------------------------
  // Imperial's researcher measures Brave on every *phone* in the platform;
  // the scheduler places jobs by model constraint.
  const auto admin = server.users().register_user("ops", server::Role::kAdmin);
  const std::string alice = "imperial";  // already registered as a host
  const auto alice_token = server.users().find(alice)->api_token;

  util::TextTable table{{"job", "node/device", "mean (mA)", "mAh",
                         "credits left"}};
  std::vector<std::tuple<std::string, server::JobId>> campaign;
  for (const char* serial : {"J7DUO-1", "PIXEL3A-1"}) {
    server::Job job;
    job.name = std::string{"brave-on-"} + serial;
    job.constraints.device_serial = serial;
    job.max_duration = util::Duration::minutes(10);
    const std::string name = job.name;
    job.script = [&table, &server, name, alice](server::JobContext& ctx) {
      automation::BrowserWorkloadOptions options;
      options.pages = 4;
      options.scrolls_per_page = 3;
      auto run = automation::run_browser_energy_test(
          *ctx.api, ctx.device_serial, device::BrowserProfile::brave(),
          options);
      if (!run.ok()) return util::Status{run.error()};
      table.add_row({name, ctx.node_label + "/" + ctx.device_serial,
                     util::format_double(run.value().mean_current_ma, 1),
                     util::format_double(run.value().discharge_mah, 2),
                     "-"});
      (void)server;
      (void)alice;
      return util::Status::ok_status();
    };
    auto id = server.submit_job(alice_token, std::move(job));
    if (!id.ok()) {
      std::cerr << id.error().str() << "\n";
      return 1;
    }
    (void)server.approve_pipeline(admin.value(), id.value());
    campaign.emplace_back(serial, id.value());
  }
  auto ran = server.run_queue(alice_token);
  std::cout << "campaign dispatched: " << ran.value() << " jobs\n";
  table.print(std::cout);
  std::cout << "imperial's credits after paying for device time: "
            << util::format_double(server.credits().balance(alice).value(), 1)
            << " (earns hosting share back when others use the London "
               "node)\n\n";

  // ---- The archive: campaign captures land in the capture store ----------
  auto& store = server.capture_store();
  std::cout << "capture store holds " << store.size() << " captures across "
            << store.workspaces().size() << " job workspaces:\n";
  for (const auto& [serial, job_id] : campaign) {
    for (const auto& cid : store.list(job_id.str())) {
      std::cout << "  " << cid.str() << " (" << serial << "): "
                << util::format_double(store.mean_ma(cid).value(), 1)
                << " mA mean, "
                << util::format_double(store.energy_mwh(cid).value(), 2)
                << " mWh — served from chunk footers ("
                << store.stats().raw_chunk_decodes << " raw decodes)\n";
    }
  }
  std::cout << "\n";

  // ---- Crowdsourced usability task on the Princeton phone ---------------
  auto task = server.testers().post_task(
      alice, "princeton", "PIXEL3A-1",
      "open the shopping app and search for three items",
      server::TesterSource::kMTurk, 5.0, sim.now());
  if (!task.ok()) {
    std::cerr << task.error().str() << "\n";
    return 1;
  }
  const auto* posted = server.testers().find(task.value());
  std::cout << "tester task posted via MTurk; invite "
            << posted->invite_token.substr(0, 14) << "..., toolbar "
            << (posted->toolbar_visible ? "visible" : "hidden") << "\n";
  auto claimed = server.testers().claim(posted->invite_token, "turker-881");
  if (claimed.ok()) {
    (void)server.testers().complete(task.value(), alice, sim.now());
    std::cout << "turker-881 completed the session and was paid "
              << util::format_double(
                     server.credits().balance("turker-881").value(), 1)
              << " credits\n";
  }
  return 0;
}
