// The §4.3 study: how does network location affect battery measurements?
//
// Tunnels the vantage point through each ProtonVPN exit, runs a speedtest
// (Table 2), then measures Brave and Chrome through every tunnel (Fig. 6),
// using location-constrained jobs so the scheduler manages the VPN.
//
//   ./build/examples/vpn_location_study
#include <iostream>
#include <map>

#include "automation/browser_workload.hpp"
#include "util/logging.hpp"
#include "net/speedtest.hpp"
#include "net/vpn.hpp"
#include "server/access_server.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace blab;

int main() {
  util::Logger::global().set_level(util::LogLevel::kWarn);
  sim::Simulator sim;
  net::Network net{sim, 20191113};
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));
  net.add_link("speedtest", "internet",
               net::LinkSpec::symmetric(util::Duration::millis(1), 1000.0));

  api::VantagePoint vp{sim, net};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  (void)vp.add_device(phone);

  server::AccessServer server{sim, net};
  (void)server.onboard_vantage_point("node1", vp);
  net::VpnProvider vpn{net, "internet"};
  server.scheduler().attach_vpn(&vpn);
  const auto admin = server.users().register_user("ops", server::Role::kAdmin);
  const auto alice =
      server.users().register_user("alice", server::Role::kExperimenter);

  // ---- Part 1: Table 2, speedtest through each tunnel -------------------
  std::cout << "Part 1 — speedtest through each ProtonVPN exit:\n\n";
  util::TextTable speeds{{"location", "down (Mbps)", "up (Mbps)", "rtt (ms)"}};
  for (const auto& loc : vpn.locations()) {
    (void)vpn.connect(vp.controller_host(), loc.country);
    net::SpeedTest st{net, vp.controller_host(), "speedtest"};
    auto result = st.run();
    (void)vpn.disconnect(vp.controller_host());
    if (!result.ok()) {
      std::cerr << result.error().str() << "\n";
      return 1;
    }
    speeds.add_row({loc.country,
                    util::format_double(result.value().download_mbps, 2),
                    util::format_double(result.value().upload_mbps, 2),
                    util::format_double(result.value().rtt_ms, 1)});
  }
  speeds.print(std::cout);

  // ---- Part 2: Fig. 6, browser energy per location ----------------------
  std::cout << "\nPart 2 — Brave and Chrome energy through each tunnel:\n\n";
  std::map<std::string, std::pair<double, double>> results;  // mAh, MB
  for (const char* browser : {"Brave", "Chrome"}) {
    for (const auto& loc : vpn.locations()) {
      server::Job job;
      job.name = std::string{browser} + "@" + loc.country;
      job.constraints.network_location = loc.country;
      const std::string key = job.name;
      job.script = [key, browser, &results](server::JobContext& ctx) {
        automation::BrowserWorkloadOptions options;
        options.pages = 5;
        options.scrolls_per_page = 3;
        auto run = automation::run_browser_energy_test(
            *ctx.api, ctx.device_serial,
            *device::BrowserProfile::find(browser), options);
        if (!run.ok()) return util::Status{run.error()};
        results[key] = {run.value().discharge_mah,
                        static_cast<double>(run.value().bytes_fetched) / 1e6};
        return util::Status::ok_status();
      };
      auto id = server.submit_job(alice.value(), std::move(job));
      (void)server.approve_pipeline(admin.value(), id.value());
    }
  }
  auto ran = server.run_queue(alice.value());
  if (!ran.ok()) {
    std::cerr << ran.error().str() << "\n";
    return 1;
  }

  util::TextTable energy{{"job", "discharge (mAh)", "traffic (MB)"}};
  for (const auto& [key, value] : results) {
    energy.add_row({key, util::format_double(value.first, 2),
                    util::format_double(value.second, 1)});
  }
  energy.print(std::cout);
  std::cout << "\nNote the Chrome@Japan traffic dip — systematically smaller "
               "ads at that exit (§4.3).\n";
  return 0;
}
