// Platform administration walkthrough (§3.1, §3.4): onboarding two vantage
// points, user and role management, standing maintenance jobs (certificate
// renewal, Monsoon power-down safety, factory reset), and SSH-driven node
// management.
//
//   ./build/examples/platform_admin
#include <iostream>
#include <memory>

#include "device/android.hpp"
#include "device/browser.hpp"
#include "server/access_server.hpp"
#include "util/logging.hpp"
#include "server/maintenance.hpp"
#include "util/strings.hpp"

using namespace blab;

namespace {

void show(const std::string& step, const util::Status& st) {
  std::cout << "  [" << (st.ok() ? "ok" : "FAIL") << "] " << step;
  if (!st.ok()) std::cout << " — " << st.error().str();
  std::cout << "\n";
}

}  // namespace

int main() {
  util::Logger::global().set_level(util::LogLevel::kWarn);
  sim::Simulator sim;
  net::Network net{sim, 42};
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));
  server::AccessServer server{sim, net};

  std::cout << "== Onboarding two member institutions (§3.4) ==\n";
  std::vector<std::unique_ptr<api::VantagePoint>> nodes;
  for (const char* label : {"node1", "node2"}) {
    api::VantagePointConfig config;
    config.name = label;
    config.seed = util::fnv1a(label);
    auto vp = std::make_unique<api::VantagePoint>(sim, net, config);
    net.add_link(vp->controller_host(), "internet",
                 net::LinkSpec::symmetric(util::Duration::millis(8), 150.0));
    device::DeviceSpec phone;
    phone.serial = std::string{"PHONE-"} + label;
    (void)vp->add_device(phone);
    show(std::string{"onboard "} + label + " -> https://" + label +
             ".batterylab.dev",
         server.onboard_vantage_point(label, *vp));
    nodes.push_back(std::move(vp));
  }
  std::cout << "  approved nodes: "
            << util::join(server.registry().approved_labels(), ", ") << "\n";

  std::cout << "\n== Users and the authorization matrix (§3.1) ==\n";
  const auto admin = server.users().register_user("ops", server::Role::kAdmin);
  const auto alice =
      server.users().register_user("alice", server::Role::kExperimenter);
  const auto tess = server.users().register_user("tess", server::Role::kTester);
  std::cout << "  registered ops(admin), alice(experimenter), tess(tester)\n";
  show("tester may NOT create jobs (expected failure)",
       server.users().authorize(tess.value(), server::Permission::kCreateJob));
  show("experimenter may create jobs",
       server.users().authorize(alice.value(),
                                server::Permission::kCreateJob));
  show("plain-HTTP console access refused (expected failure)",
       server.users().authorize(admin.value(),
                                server::Permission::kViewConsole,
                                /*over_https=*/false));

  std::cout << "\n== Standing maintenance jobs (§3.1) ==\n";
  // Leave node1's Monsoon on and give PHONE-node2 some app state to wipe.
  (void)nodes[0]->power_socket().turn_on();
  auto* dev2 = nodes[1]->find_device("PHONE-node2");
  {
    auto browser = std::make_unique<device::Browser>(
        *dev2, device::BrowserProfile::chrome());
    auto* b = browser.get();
    (void)dev2->os().install(std::move(browser));
    (void)dev2->os().start_activity(b->package());
    b->on_tap(0, 0);
    b->on_tap(0, 0);
  }

  auto submit = [&](server::Job job, const std::string& node,
                    const std::string& serial = "") {
    job.constraints.node_label = node;
    job.constraints.device_serial = serial;
    auto id = server.submit_job(alice.value(), std::move(job));
    (void)server.approve_pipeline(admin.value(), id.value());
    return id.value();
  };
  submit(server::make_monitor_safety_job(), "node1");
  submit(server::make_cert_renewal_job(server), "node2");
  const auto reset_id =
      submit(server::make_factory_reset_job(), "node2", "PHONE-node2");
  auto ran = server.run_queue(alice.value());
  std::cout << "  dispatched " << ran.value() << " maintenance jobs\n";
  std::cout << "  node1 Monsoon socket now: "
            << (nodes[0]->power_socket().is_on() ? "ON (!)" : "off (safe)")
            << "\n";
  std::cout << "  certificates current on: ";
  for (const auto& label : server.registry().approved_labels()) {
    if (server.certs().node_current(label)) std::cout << label << " ";
  }
  std::cout << "\n  factory-reset workspace log:\n";
  for (const auto& line :
       server.scheduler().find(reset_id)->workspace.logs()) {
    std::cout << "    " << line << "\n";
  }

  std::cout << "\n== Raw SSH node management ==\n";
  nodes[0]->controller().ssh_server().set_command_handler(
      [](const std::string& cmd) {
        if (cmd == "uptime") {
          return net::SshCommandResult{0, "up 42 days, load 0.25"};
        }
        return net::SshCommandResult{127, "command not found: " + cmd};
      });
  auto uptime = server.ssh_exec("node1", "uptime");
  std::cout << "  node1 $ uptime -> "
            << (uptime.ok() ? uptime.value().output : uptime.error().str())
            << "\n";

  std::cout << "\n== Fleet health: rollups, SLOs, auto-retry (§15) ==\n";
  show("enable_health", server.enable_health());
  server.scheduler().set_retry_policy({.max_attempts = 2,
                                       .backoff = util::Duration::minutes(5),
                                       .owner_budget = 20});
  (void)server.schedule_health_evaluations(util::Duration::minutes(2));

  // Take one real measurement so the fleet rollup has something to fold.
  server::Job measure;
  measure.name = "admin/health-demo-capture";
  measure.script = [](server::JobContext& ctx) -> util::Status {
    if (auto st = ctx.api->power_monitor(); !st.ok()) return st;
    if (auto st = ctx.api->set_voltage(3.85); !st.ok()) return st;
    auto cap =
        ctx.api->run_monitor(ctx.device_serial, util::Duration::seconds(2));
    return cap.ok() ? util::Status::ok_status() : cap.error();
  };
  submit(std::move(measure), "node1", "PHONE-node1");
  (void)server.run_queue(alice.value());
  sim.run_for(util::Duration::minutes(10));  // several SLO evaluations

  controller::RestBackend* health = server.health_rest();
  auto fleet = health->call("rollup", "scope=fleet");
  std::cout << "  GET /rollup?scope=fleet ->\n    "
            << (fleet.ok() ? fleet.value() : fleet.error().str()) << "\n";
  auto status = health->call("health", "");
  std::cout << "  GET /health ->\n    "
            << (status.ok() ? status.value() : status.error().str()) << "\n";
  std::cout << "  overall: "
            << health::health_state_name(server.slo_engine()->overall())
            << " after " << server.slo_engine()->evaluations()
            << " evaluation(s)\n";
  return 0;
}
