// Remote usability testing (§3.2–3.3): an experimenter shares the mirrored
// device with a recruited tester, who interacts with it from their browser
// while a battery measurement runs. Demonstrates the GUI toolbar's REST
// surface, viewer management, input injection and the latency probe.
//
//   ./build/examples/remote_usability_session
#include <iostream>

#include "api/batterylab_api.hpp"
#include "util/logging.hpp"
#include "device/android.hpp"
#include "device/browser.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace blab;

int main() {
  util::Logger::global().set_level(util::LogLevel::kWarn);
  sim::Simulator sim;
  net::Network net{sim, 7771};
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));

  api::VantagePoint vp{sim, net};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  auto* dev = vp.add_device(phone).value();
  api::BatteryLabApi api{vp};
  api.bind_rest_endpoints();

  // The tester joins from home: ~40 ms away, modest uplink.
  net.add_link("tester-laptop", "internet",
               net::LinkSpec::symmetric(util::Duration::millis(20), 50.0));

  // The app under (usability) test is a browser; preinstall + first-run.
  auto browser = std::make_unique<device::Browser>(
      *dev, device::BrowserProfile::chrome());
  auto* b = browser.get();
  (void)dev->os().install(std::move(browser));
  (void)dev->os().start_activity(b->package());
  b->on_tap(0, 0);
  b->on_tap(0, 0);

  // Experimenter starts mirroring through the GUI backend (AJAX endpoint),
  // then hides the toolbar before sharing the page with the tester (§3.2).
  auto started = vp.rest().call("device_mirroring", "device_id=J7DUO-1");
  if (!started.ok()) {
    std::cerr << started.error().str() << "\n";
    return 1;
  }
  auto* session = vp.mirroring("J7DUO-1");
  session->novnc().set_toolbar_visible(false);
  std::cout << "mirroring started; toolbar hidden for the tester: "
            << (session->novnc().toolbar_visible() ? "no" : "yes") << "\n";

  // Battery measurement runs while the human drives the device.
  (void)api.power_monitor();
  (void)api.set_voltage(3.85);
  if (auto st = api.start_monitor("J7DUO-1"); !st.ok()) {
    std::cerr << st.error().str() << "\n";
    return 1;
  }

  // Tester connects and interacts: types a URL, scrolls around.
  const net::Address tester{"tester-laptop", 7300};
  net.listen(tester, [](const net::Message&) {});  // their browser tab
  (void)session->attach_viewer(tester);
  auto send_input = [&](const std::string& command) {
    net::Message input;
    input.src = tester;
    input.dst = session->novnc().address();
    input.tag = "novnc.input";
    input.payload = command;
    input.wire_bytes = 96;
    (void)net.send(std::move(input));
    sim.run_for(util::Duration::millis(1200));
  };
  send_input("input text news-c.example");
  send_input("input keyevent 66");
  sim.run_for(util::Duration::seconds(6));
  for (int i = 0; i < 4; ++i) {
    send_input(i % 2 == 0 ? "input swipe 540 1200 540 600"
                          : "input swipe 540 600 540 1200");
    sim.run_for(util::Duration::seconds(2));
  }

  // Measure what the tester experiences: click-to-display latency.
  util::RunningStats latency;
  for (int i = 0; i < 10; ++i) {
    auto probe = session->measure_latency_sync(tester, 540, 900);
    if (probe.ok()) latency.add(probe.value().to_seconds());
    sim.run_for(util::Duration::seconds(1));
  }

  auto capture = api.stop_monitor();
  (void)api.device_mirroring("J7DUO-1", false);
  if (!capture.ok()) {
    std::cerr << capture.error().str() << "\n";
    return 1;
  }

  std::cout << "tester session: " << b->pages_loaded() << " page(s), "
            << util::format_bytes(static_cast<double>(b->bytes_fetched()))
            << " fetched\n"
            << "battery during session: "
            << util::format_double(capture.value().mean_current_ma(), 1)
            << " mA mean over "
            << util::to_string(capture.value().duration()) << "\n"
            << "remote latency felt by tester: "
            << util::format_double(latency.mean(), 2) << " s mean ("
            << util::format_double(latency.stddev(), 2)
            << " s stddev) — higher than the paper's co-located 1.44 s, as"
            << " expected 40 ms away\n";
  return 0;
}
