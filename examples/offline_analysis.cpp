// Offline analysis workflow: run a measured experiment, export the capture
// in the Monsoon CSV dialect (what the job workspace retains, §3.1), then
// reload it later and analyze without the testbed — CDFs, quantiles, a
// software-model calibration, and a decimated archive copy.
//
//   ./build/examples/offline_analysis
#include <cstdio>
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/software_estimator.hpp"
#include "analysis/trace_io.hpp"
#include "api/batterylab_api.hpp"
#include "device/android.hpp"
#include "device/video_player.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace blab;

int main() {
  util::Logger::global().set_level(util::LogLevel::kWarn);
  sim::Simulator sim;
  net::Network net{sim, 20191113};
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));
  api::VantagePoint vp{sim, net};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  auto* dev = vp.add_device(phone).value();
  api::BatteryLabApi api{vp};

  // ---- Acquire: 60 s of video playback at 5 kHz --------------------------
  auto player = std::make_unique<device::VideoPlayerApp>(*dev);
  auto* p = player.get();
  (void)dev->os().install(std::move(player));
  (void)dev->os().start_activity(p->package());
  (void)p->play("/sdcard/video.mp4");
  (void)api.power_monitor();
  (void)api.set_voltage(3.85);
  auto capture = api.run_monitor("J7DUO-1", util::Duration::minutes(1));
  if (!capture.ok()) {
    std::cerr << capture.error().str() << "\n";
    return 1;
  }
  std::cout << "acquired: " << analysis::capture_summary(capture.value())
            << "\n";

  // ---- Export: full-rate trace + decimated archive copy ------------------
  const std::string full_path = "/tmp/blab_trace_full.csv";
  const std::string archive_path = "/tmp/blab_trace_50hz.csv";
  (void)analysis::write_capture_csv(capture.value(), full_path);
  (void)analysis::write_capture_csv(capture.value(), archive_path,
                                    /*stride=*/100);
  std::cout << "exported " << full_path << " (5 kHz) and " << archive_path
            << " (50 Hz archive)\n";

  // ---- Reload & analyze, testbed-free ------------------------------------
  auto full = analysis::read_capture_csv(full_path);
  auto archive = analysis::read_capture_csv(archive_path);
  if (!full.ok() || !archive.ok()) {
    std::cerr << "reload failed\n";
    return 1;
  }
  analysis::CdfFigure fig{"Reloaded trace: current CDF", "mA"};
  fig.add_series("5 kHz", full.value().current_cdf(10));
  fig.add_series("50 Hz archive", archive.value().current_cdf());
  fig.print(std::cout);
  std::cout << "mean drift from decimation: "
            << util::format_double(
                   std::abs(full.value().mean_current_ma() -
                            archive.value().mean_current_ma()),
                   3)
            << " mA (means survive decimation; tails do not — see "
               "bench/ablations)\n";

  std::remove(full_path.c_str());
  std::remove(archive_path.c_str());
  return 0;
}
