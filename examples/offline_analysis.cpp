// Offline analysis workflow: run a measured experiment, export the capture
// in the Monsoon CSV dialect (what the job workspace retains, §3.1), then
// reload it later and analyze without the testbed — CDFs, quantiles, a
// software-model calibration, and a decimated archive copy. The run's own
// trace forest is folded into a flame tree + critical-path readout at the
// end (obs/aggregate), the same analytics GET /flame serves.
//
//   ./build/examples/offline_analysis
#include <cstdio>
#include <functional>
#include <iostream>

#include "obs/aggregate.hpp"

#include "analysis/report.hpp"
#include "analysis/software_estimator.hpp"
#include "analysis/trace_io.hpp"
#include "api/batterylab_api.hpp"
#include "device/android.hpp"
#include "device/video_player.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace blab;

int main() {
  util::Logger::global().set_level(util::LogLevel::kWarn);
  sim::Simulator sim;
  net::Network net{sim, 20191113};
  net.add_host("internet");
  net.add_link("web", "internet",
               net::LinkSpec::symmetric(util::Duration::millis(4), 900.0));
  api::VantagePoint vp{sim, net};
  net.add_link(vp.controller_host(), "internet",
               net::LinkSpec::symmetric(util::Duration::millis(6), 200.0));
  device::DeviceSpec phone;
  phone.serial = "J7DUO-1";
  auto* dev = vp.add_device(phone).value();
  api::BatteryLabApi api{vp};

  // ---- Acquire: 60 s of video playback at 5 kHz --------------------------
  auto player = std::make_unique<device::VideoPlayerApp>(*dev);
  auto* p = player.get();
  (void)dev->os().install(std::move(player));
  (void)dev->os().start_activity(p->package());
  (void)p->play("/sdcard/video.mp4");
  (void)api.power_monitor();
  (void)api.set_voltage(3.85);
  auto capture = api.run_monitor("J7DUO-1", util::Duration::minutes(1));
  if (!capture.ok()) {
    std::cerr << capture.error().str() << "\n";
    return 1;
  }
  std::cout << "acquired: " << analysis::capture_summary(capture.value())
            << "\n";

  // ---- Export: full-rate trace + decimated archive copy ------------------
  const std::string full_path = "/tmp/blab_trace_full.csv";
  const std::string archive_path = "/tmp/blab_trace_50hz.csv";
  (void)analysis::write_capture_csv(capture.value(), full_path);
  (void)analysis::write_capture_csv(capture.value(), archive_path,
                                    /*stride=*/100);
  std::cout << "exported " << full_path << " (5 kHz) and " << archive_path
            << " (50 Hz archive)\n";

  // ---- Reload & analyze, testbed-free ------------------------------------
  auto full = analysis::read_capture_csv(full_path);
  auto archive = analysis::read_capture_csv(archive_path);
  if (!full.ok() || !archive.ok()) {
    std::cerr << "reload failed\n";
    return 1;
  }
  analysis::CdfFigure fig{"Reloaded trace: current CDF", "mA"};
  fig.add_series("5 kHz", full.value().current_cdf(10));
  fig.add_series("50 Hz archive", archive.value().current_cdf());
  fig.print(std::cout);
  std::cout << "mean drift from decimation: "
            << util::format_double(
                   std::abs(full.value().mean_current_ma() -
                            archive.value().mean_current_ma()),
                   3)
            << " mA (means survive decimation; tails do not — see "
               "bench/ablations)\n";

  // ---- Trace analytics: where did the simulated time go? -----------------
  const auto& spans = sim.tracer().spans();
  const obs::FlameNode flame = obs::build_flame(spans);
  std::cout << "\nflame tree (" << spans.size() << " finished spans):\n";
  const std::function<void(const obs::FlameNode&, int)> print_node =
      [&](const obs::FlameNode& node, int depth) {
        for (const obs::FlameNode& child : node.children) {
          std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ')
                    << child.component << "/" << child.name << " x"
                    << child.count << " total="
                    << util::format_double(child.total_us / 1e6, 3)
                    << "s self="
                    << util::format_double(child.self_us / 1e6, 3) << "s\n";
          print_node(child, depth + 1);
        }
      };
  print_node(flame, 1);
  for (const obs::CriticalPath& path : obs::critical_paths(spans)) {
    std::cout << "critical path trace " << path.trace << ": total "
              << util::format_double(path.total_us / 1e6, 3) << "s";
    for (std::size_t i = 0; i < obs::kPathSegmentCount; ++i) {
      if (path.segment_us[i] == 0) continue;
      std::cout << " " << obs::path_segment_name(
                              static_cast<obs::PathSegment>(i))
                << "=" << util::format_double(path.segment_us[i] / 1e6, 3)
                << "s";
    }
    std::cout << "\n";
  }

  std::remove(full_path.c_str());
  std::remove(archive_path.c_str());
  return 0;
}
